"""The metrics registry: one namespaced API over every monitor in a run.

The simulation kernel already keeps excellent low-level monitors —
:class:`~repro.sim.monitor.Tally` for observational statistics and
:class:`~repro.sim.monitor.TimeWeighted` for time-persistent quantities —
but they are scattered across servers, sites, and collectors.  The
:class:`MetricsRegistry` binds them (plus plain event counters) under
dot-separated names with a fixed convention::

    <component>.<index>.<resource>.<quantity>
    e.g.  site.0.cpu.busy      (gauge   — TimeWeighted)
          site.2.disk.queue    (gauge   — TimeWeighted)
          queries.waiting      (histogram — Tally)
          events.QueryCompleted (counter)

Three metric kinds cover everything:

* :class:`CounterMetric` — monotone event counts owned by the registry;
* :class:`GaugeMetric` — wraps an existing :class:`TimeWeighted`
  (current value, time average, maximum);
* :class:`HistogramMetric` — wraps an existing :class:`Tally`
  (count, mean, stdev, min/max).

``snapshot()`` flattens every metric into a deterministic, sorted
``{"name.stat": value}`` mapping — the machine-readable view the paper's
load-board argument needs and the exporters serialize.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.sim.monitor import Tally, TimeWeighted

#: Kinds a metric may report itself as.
METRIC_KINDS = ("counter", "gauge", "histogram")


class Metric:
    """Base class: a named, kind-tagged statistics adapter."""

    kind: str = "abstract"

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name

    def value(self) -> float:
        """The metric's single headline value."""
        raise NotImplementedError

    def stats(self) -> Dict[str, float]:
        """All statistics of the metric, keyed by stat name."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} value={self.value():.6g}>"


class CounterMetric(Metric):
    """A monotone counter owned by the registry."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.count = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.count += amount

    def value(self) -> float:
        return float(self.count)

    def stats(self) -> Dict[str, float]:
        return {"count": float(self.count)}


class GaugeMetric(Metric):
    """Adapter over an existing :class:`TimeWeighted` monitor."""

    kind = "gauge"

    def __init__(self, name: str, monitor: TimeWeighted) -> None:
        super().__init__(name)
        self.monitor = monitor

    def value(self) -> float:
        return float(self.monitor.value)

    def stats(self) -> Dict[str, float]:
        return {
            "value": float(self.monitor.value),
            "avg": float(self.monitor.time_average),
            "max": float(self.monitor.maximum),
        }


class HistogramMetric(Metric):
    """Adapter over an existing :class:`Tally` monitor."""

    kind = "histogram"

    def __init__(self, name: str, monitor: Tally) -> None:
        super().__init__(name)
        self.monitor = monitor

    def value(self) -> float:
        return float(self.monitor.mean)

    def stats(self) -> Dict[str, float]:
        tally = self.monitor
        out = {
            "count": float(tally.count),
            "mean": float(tally.mean),
            "stdev": float(tally.stdev),
        }
        if tally.count:
            out["min"] = float(tally.minimum)
            out["max"] = float(tally.maximum)
        return out


class MetricsRegistry:
    """Named counters/gauges/histograms behind one namespaced API."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _add(self, metric: Metric) -> None:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            raise ValueError(
                f"metric {metric.name!r} already registered as {existing.kind}"
            )
        self._metrics[metric.name] = metric

    def counter(self, name: str) -> CounterMetric:
        """Create *name* as a counter, or return the existing one."""
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, CounterMetric):
                raise ValueError(
                    f"metric {name!r} is a {existing.kind}, not a counter"
                )
            return existing
        metric = CounterMetric(name)
        self._metrics[name] = metric
        return metric

    def bind_gauge(self, name: str, monitor: TimeWeighted) -> GaugeMetric:
        """Expose an existing :class:`TimeWeighted` under *name*."""
        metric = GaugeMetric(name, monitor)
        self._add(metric)
        return metric

    def bind_histogram(self, name: str, monitor: Tally) -> HistogramMetric:
        """Expose an existing :class:`Tally` under *name*."""
        metric = HistogramMetric(name, monitor)
        self._add(metric)
        return metric

    def scoped(self, prefix: str) -> "MetricNamespace":
        """A view that prepends ``prefix + '.'`` to every registered name."""
        return MetricNamespace(self, prefix)

    # ------------------------------------------------------------------
    # Lookup & export
    # ------------------------------------------------------------------
    def get(self, name: str) -> Metric:
        """The metric registered under *name* (KeyError if absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """Every registered name, sorted (deterministic)."""
        return sorted(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._metrics[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten every metric into sorted ``{"name.stat": value}``.

        Counters contribute a single ``name`` entry; gauges and histograms
        contribute one ``name.stat`` entry per statistic.  Key order is
        sorted, so two snapshots of identical state serialize identically.
        """
        flat: Dict[str, float] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, CounterMetric):
                flat[name] = metric.value()
            else:
                for stat, value in metric.stats().items():
                    flat[f"{name}.{stat}"] = value
        return dict(sorted(flat.items()))

    def summary_pairs(self) -> Tuple[Tuple[str, float], ...]:
        """:meth:`snapshot` as a hashable, sorted tuple of pairs."""
        return tuple(self.snapshot().items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self)} metrics>"


class MetricNamespace:
    """A prefixing view over a :class:`MetricsRegistry`.

    Lets a component register its metrics without knowing where it sits in
    the global namespace::

        ns = registry.scoped(f"site.{index}")
        ns.bind_gauge("cpu.busy", site.cpu.busy)   # -> "site.0.cpu.busy"
    """

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self.registry = registry
        self.prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> CounterMetric:
        return self.registry.counter(self._qualify(name))

    def bind_gauge(self, name: str, monitor: TimeWeighted) -> GaugeMetric:
        return self.registry.bind_gauge(self._qualify(name), monitor)

    def bind_histogram(self, name: str, monitor: Tally) -> HistogramMetric:
        return self.registry.bind_histogram(self._qualify(name), monitor)

    def scoped(self, prefix: str) -> "MetricNamespace":
        return MetricNamespace(self.registry, self._qualify(prefix))


#: Anything metrics can be looked up on.
RegistryLike = Union[MetricsRegistry, MetricNamespace]

#: A read-only snapshot mapping.
Snapshot = Mapping[str, float]


def merge_snapshots(
    base: Optional[Snapshot], extra: Snapshot
) -> Dict[str, float]:
    """Merge two snapshots (extra wins), returning a sorted dict."""
    merged: Dict[str, float] = {}
    if base is not None:
        merged.update(base)
    merged.update(extra)
    return dict(sorted(merged.items()))


__all__ = [
    "METRIC_KINDS",
    "Metric",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "MetricNamespace",
    "RegistryLike",
    "Snapshot",
    "merge_snapshots",
]
