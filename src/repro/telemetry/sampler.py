"""The timeline sampler: fixed-cadence snapshots of two-dimensional load.

The paper's whole argument is about *watching* CPU-bound and I/O-bound
load separately per site; the :class:`TimelineSampler` turns that into
data.  On a fixed simulated-time cadence it records, per site:

* instantaneous CPU and disk queue lengths,
* per-interval CPU and per-disk utilizations (derived from busy-time
  integrals, so the samples **integrate exactly** to the utilizations a
  run's :class:`~repro.model.metrics.SystemResults` reports — a property
  the telemetry test suite pins to within 1e-9),
* the load board's committed I/O-bound / CPU-bound query counts, and
* the staleness (age) of the load information policies currently see
  (always 0 under the paper's oracle assumption; positive under the
  stale-information extension).

Cadence contract: sampling starts exactly at the warmup boundary (the
baseline sample, whose interval utilizations are 0 over a zero-length
interval) and always ends with a sample exactly at the end of the
measurement window, even when the interval does not divide the duration.
Sample times are computed as ``start + k * interval`` (never accumulated),
so cadence carries no floating-point drift.

Sampler events run at :data:`SAMPLE_PRIORITY` (after simultaneous model
events), and sampling only *reads* monitor state — enabling it does not
perturb the simulation: results are bit-identical with and without a
sampler attached (also pinned by the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase

#: Event priority for samples: fires after simultaneous model events so a
#: sample at time t observes the post-event state of instant t.
SAMPLE_PRIORITY = 1_000


@dataclass(frozen=True, slots=True)
class TimelineSample:
    """One site's load snapshot at one sample instant.

    Attributes:
        time: Simulated time of the sample.
        site: Site index.
        cpu_queue: Jobs currently sharing the site's CPU (PS population).
        disk_queue: Customers at the site's disks (waiting + in service).
        cpu_busy: Cumulative CPU busy-time integral since measurement start.
        disk_busy: Cumulative busy-server integral summed over the disks.
        cpu_utilization: CPU utilization over the interval since the
            previous sample (0.0 for the baseline sample).
        disk_utilization: Average per-disk utilization over the interval
            since the previous sample (0.0 for the baseline sample).
        load_io: I/O-bound queries committed to the site (load board).
        load_cpu: CPU-bound queries committed to the site (load board).
        staleness: Age of the load information policies currently see.
    """

    time: float
    site: int
    cpu_queue: int
    disk_queue: int
    cpu_busy: float
    disk_busy: float
    cpu_utilization: float
    disk_utilization: float
    load_io: int
    load_cpu: int
    staleness: float


#: Column order of the CSV exporter == field order of TimelineSample.
TIMELINE_FIELDS: Tuple[str, ...] = tuple(
    spec.name for spec in fields(TimelineSample)
)


class TimelineSampler:
    """Snapshots per-site load on a fixed simulated-time cadence.

    Args:
        system: The system to observe (any :class:`DistributedDatabase`,
            including the extension subclasses).
        interval: Simulated time between samples (> 0).

    The sampler is armed with :meth:`start` (normally called by
    :class:`~repro.telemetry.session.TelemetrySession` at the warmup
    boundary) and stops by itself at the end time.
    """

    def __init__(self, system: "DistributedDatabase", interval: float) -> None:
        if not (interval > 0) or math.isinf(interval):
            raise ValueError(f"sample interval must be finite and > 0, got {interval}")
        self.system = system
        self.interval = interval
        self._samples: List[TimelineSample] = []
        self._started = False
        self._start_time = 0.0
        self._end_time = 0.0
        self._tick = 0
        self._last_time = 0.0
        num_sites = system.config.num_sites
        self._last_cpu_busy = [0.0] * num_sites
        self._last_disk_busy = [0.0] * num_sites

    # ------------------------------------------------------------------
    # Cadence control
    # ------------------------------------------------------------------
    def start(self, end_time: float) -> None:
        """Begin sampling now; the final sample fires exactly at *end_time*.

        The first (baseline) sample is taken immediately at the current
        simulated time.  May only be called once.
        """
        sim = self.system.sim
        if self._started:
            raise ValueError("sampler already started")
        if end_time < sim.now:
            raise ValueError(f"end_time {end_time} is before now {sim.now}")
        self._started = True
        self._start_time = sim.now
        self._end_time = end_time
        self._last_time = sim.now
        self._sample_now()
        self._schedule_next()

    def _next_time(self) -> float:
        """The next sample instant: ``start + k*interval`` capped at end."""
        candidate = self._start_time + (self._tick + 1) * self.interval
        return min(candidate, self._end_time)

    def _schedule_next(self) -> None:
        sim = self.system.sim
        if sim.now >= self._end_time:
            return
        target = self._next_time()
        sim.schedule_at(
            target, self._fire, priority=SAMPLE_PRIORITY, label="telemetry:sample"
        )

    def _fire(self) -> None:
        self._tick += 1
        self._sample_now()
        self._last_time = self.system.sim.now
        self._schedule_next()

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def _sample_now(self) -> None:
        system = self.system
        now = system.sim.now
        dt = now - self._last_time
        board = system.load_board
        staleness = system.load_info_age()
        num_disks = system.config.site.num_disks
        for index, site in enumerate(system.sites):
            cpu_busy = float(site.cpu.busy.integral)
            disk_busy = math.fsum(d.busy.integral for d in site.disks)
            if dt > 0:
                cpu_util = (cpu_busy - self._last_cpu_busy[index]) / dt
                disk_util = (disk_busy - self._last_disk_busy[index]) / (
                    dt * num_disks
                )
            else:
                cpu_util = 0.0
                disk_util = 0.0
            self._last_cpu_busy[index] = cpu_busy
            self._last_disk_busy[index] = disk_busy
            disk_queue = 0
            for disk in site.disks:
                disk_queue += disk.queue_depth + disk.busy_servers
            self._samples.append(
                TimelineSample(
                    time=now,
                    site=index,
                    cpu_queue=site.cpu.job_count,
                    disk_queue=disk_queue,
                    cpu_busy=cpu_busy,
                    disk_busy=disk_busy,
                    cpu_utilization=cpu_util,
                    disk_utilization=disk_util,
                    load_io=board.num_io_queries(index),
                    load_cpu=board.num_cpu_queries(index),
                    staleness=staleness,
                )
            )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def samples(self) -> Tuple[TimelineSample, ...]:
        """Every sample taken so far, in (time, site) order."""
        return tuple(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def sample_times(self) -> Tuple[float, ...]:
        """Distinct sample instants, in order."""
        times: List[float] = []
        for sample in self._samples:
            if not times or sample.time != times[-1]:
                times.append(sample.time)
        return tuple(times)

    def integrated_utilization(self, site: int) -> Tuple[float, float]:
        """Time-integrate one site's sampled interval utilizations.

        Returns:
            ``(cpu, disk)`` utilization over the sampled window — exactly
            the quantities :class:`~repro.model.metrics.SystemResults`
            reports (per site), reconstructed purely from the timeline.
        """
        rows = [s for s in self._samples if s.site == site]
        if len(rows) < 2:
            return (0.0, 0.0)
        total = rows[-1].time - rows[0].time
        if total <= 0:
            return (0.0, 0.0)
        cpu = math.fsum(
            rows[i].cpu_utilization * (rows[i].time - rows[i - 1].time)
            for i in range(1, len(rows))
        )
        disk = math.fsum(
            rows[i].disk_utilization * (rows[i].time - rows[i - 1].time)
            for i in range(1, len(rows))
        )
        return (cpu / total, disk / total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimelineSampler interval={self.interval:.6g} "
            f"samples={len(self._samples)}>"
        )


#: A primitive a timeline cell may carry (CSV/JSON exchange).
CellValue = Union[float, int]


def sample_to_dict(sample: TimelineSample) -> Dict[str, CellValue]:
    """Flatten one sample into JSON primitives, in column order."""
    return {name: getattr(sample, name) for name in TIMELINE_FIELDS}


_COERCERS = {"float": float, "int": int}


def sample_from_dict(data: Dict[str, CellValue]) -> TimelineSample:
    """Rebuild a :class:`TimelineSample`, coercing field types exactly."""
    kwargs: Dict[str, CellValue] = {}
    for spec in fields(TimelineSample):
        if spec.name not in data:
            raise ValueError(f"timeline record is missing field {spec.name!r}")
        kwargs[spec.name] = _COERCERS[str(spec.type)](data[spec.name])
    return TimelineSample(**kwargs)  # type: ignore[arg-type]


__all__ = [
    "SAMPLE_PRIORITY",
    "TIMELINE_FIELDS",
    "TimelineSample",
    "TimelineSampler",
    "CellValue",
    "sample_to_dict",
    "sample_from_dict",
]
