"""One-stop telemetry wiring for a simulation run.

:class:`TelemetrySession` assembles the subsystem's parts — event log,
metrics registry, timeline sampler — around one
:class:`~repro.model.system.DistributedDatabase` and drives their life
cycle purely through the event bus:

* it subscribes to :class:`~repro.telemetry.events.RunStarted` to learn
  the measurement horizon, and to
  :class:`~repro.telemetry.events.WarmupEnded` to arm the timeline
  sampler *after* statistics truncation (so the baseline sample reads
  post-reset busy integrals and sampled utilizations integrate exactly
  to the run's reported figures);
* with ``config.events`` it attaches a catch-all
  :class:`~repro.telemetry.bus.EventLog` plus per-type
  ``events.<Type>`` counters;
* it binds every site's CPU/disk monitors and the run's query tallies
  into a :class:`~repro.telemetry.registry.MetricsRegistry` under the
  ``site.<i>.<resource>.<quantity>`` convention.

Because everything rides on the bus, ``DistributedDatabase.run`` needs
no telemetry parameter: construct the session before ``run()``, read
``events`` / ``timeline`` / ``summary()`` after, and use
:meth:`TelemetrySession.merge` to fold the summary into the returned
:class:`~repro.model.metrics.SystemResults`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.telemetry.bus import EventLog, Subscription
from repro.telemetry.events import (
    RunStarted,
    TelemetryEvent,
    WarmupEnded,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampler import TimelineSample, TimelineSampler
from repro.telemetry.tracing.decisions import DecisionAudit, DecisionRecord
from repro.telemetry.tracing.spans import Span, SpanCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.metrics import SystemResults
    from repro.model.system import DistributedDatabase


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """What a :class:`TelemetrySession` should collect.

    Attributes:
        events: Keep a full event log (and per-type counters).
        sample_interval: Timeline sampling cadence in simulated time;
            ``0.0`` disables the timeline sampler.
        event_capacity: Bound on retained events (oldest dropped first);
            ``None`` retains everything.
        spans: Assemble query-lifecycle spans
            (:class:`~repro.telemetry.tracing.spans.SpanCollector`).
        decisions: Audit every allocation decision
            (:class:`~repro.telemetry.tracing.decisions.DecisionAudit`).
            Arms the opt-in ``AllocationDecided`` emission.
    """

    events: bool = True
    sample_interval: float = 0.0
    event_capacity: Optional[int] = None
    spans: bool = False
    decisions: bool = False

    def __post_init__(self) -> None:
        if self.sample_interval < 0:
            raise ValueError(
                f"sample_interval must be >= 0, got {self.sample_interval}"
            )
        if self.event_capacity is not None and self.event_capacity < 1:
            raise ValueError("event_capacity must be >= 1 (or None)")


class TelemetrySession:
    """Attach telemetry collection to one system for one ``run()``.

    Args:
        system: The system to observe.  The session subscribes to the
            system's bus immediately; construct it *before* ``run()``.
        config: What to collect (default: events only).

    Attributes:
        registry: The run's :class:`MetricsRegistry`.
        log: The event log, or ``None`` when events are disabled.
        sampler: The timeline sampler, or ``None`` when disabled.
    """

    def __init__(
        self,
        system: "DistributedDatabase",
        config: TelemetryConfig = TelemetryConfig(),
    ) -> None:
        self.system = system
        self.config = config
        self.registry = MetricsRegistry()
        self._subscriptions: List[Subscription] = []
        self._counters: Dict[str, int] = {}
        self._end_time: Optional[float] = None
        self._closed = False

        bus = system.sim.bus
        self.log: Optional[EventLog] = None
        if config.events:
            self.log = EventLog(capacity=config.event_capacity)
            self.log.attach(bus)
            self._subscriptions.append(bus.subscribe_all(self._count_event))

        self.sampler: Optional[TimelineSampler] = None
        if config.sample_interval > 0:
            self.sampler = TimelineSampler(system, config.sample_interval)

        self.span_collector: Optional[SpanCollector] = None
        if config.spans:
            self.span_collector = SpanCollector(bus)

        self.decision_audit: Optional[DecisionAudit] = None
        if config.decisions:
            self.decision_audit = DecisionAudit(bus)

        self._subscriptions.append(bus.subscribe(RunStarted, self._on_run_started))
        self._subscriptions.append(
            bus.subscribe(WarmupEnded, self._on_warmup_ended)
        )
        self._bind_monitors()

    # ------------------------------------------------------------------
    # Bus handlers
    # ------------------------------------------------------------------
    def _count_event(self, event: TelemetryEvent) -> None:
        self.registry.counter(f"events.{event.name}").inc()

    def _on_run_started(self, event: TelemetryEvent) -> None:
        assert isinstance(event, RunStarted)
        self._end_time = event.time + event.warmup + event.duration

    def _on_warmup_ended(self, event: TelemetryEvent) -> None:
        del event
        sampler = self.sampler
        if sampler is None:
            return
        end_time = self._end_time
        if end_time is None:
            raise ValueError(
                "WarmupEnded seen without RunStarted; cannot derive the "
                "sampling horizon"
            )
        sampler.start(end_time)

    # ------------------------------------------------------------------
    # Registry bindings
    # ------------------------------------------------------------------
    def _bind_monitors(self) -> None:
        registry = self.registry
        for site in self.system.sites:
            ns = registry.scoped(f"site.{site.index}")
            ns.bind_gauge("cpu.busy", site.cpu.busy)
            ns.bind_gauge("cpu.queue", site.cpu.population)
            for position, disk in enumerate(site.disks):
                disk_ns = ns.scoped(f"disk.{position}")
                disk_ns.bind_gauge("busy", disk.busy)
                disk_ns.bind_gauge("queue", disk.population)
        metrics = self.system.metrics
        queries = registry.scoped("queries")
        queries.bind_histogram("waiting", metrics.waiting)
        queries.bind_histogram("response", metrics.response)
        queries.bind_histogram("normalized", metrics.normalized_waiting)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[TelemetryEvent, ...]:
        """The retained event stream (empty when events are disabled)."""
        if self.log is None:
            return ()
        return self.log.events

    @property
    def timeline(self) -> Tuple[TimelineSample, ...]:
        """The sampled timeline (empty when sampling is disabled)."""
        if self.sampler is None:
            return ()
        return self.sampler.samples

    @property
    def spans(self) -> Tuple[Span, ...]:
        """The collected spans (empty when span tracing is disabled)."""
        if self.span_collector is None:
            return ()
        return self.span_collector.spans

    @property
    def decisions(self) -> Tuple[DecisionRecord, ...]:
        """The decision audit (empty when auditing is disabled)."""
        if self.decision_audit is None:
            return ()
        return self.decision_audit.records

    def summary(self) -> Dict[str, float]:
        """The registry snapshot: sorted ``{"name.stat": value}``."""
        return self.registry.snapshot()

    def merge(self, results: "SystemResults") -> "SystemResults":
        """Return *results* with the telemetry summary folded in.

        When span tracing or the decision audit is enabled, their
        roll-ups ride along as ``results.spans`` / ``results.decisions``.
        """
        results = replace(results, telemetry=self.registry.summary_pairs())
        if self.span_collector is not None:
            results = replace(results, spans=self.span_collector.summary())
        if self.decision_audit is not None:
            results = replace(results, decisions=self.decision_audit.summary())
        return results

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unsubscribe from the bus (idempotent); results stay readable."""
        if self._closed:
            return
        self._closed = True
        bus = self.system.sim.bus
        if self.log is not None:
            self.log.detach()
        if self.span_collector is not None:
            self.span_collector.close()
        if self.decision_audit is not None:
            self.decision_audit.close()
        for subscription in self._subscriptions:
            bus.unsubscribe(subscription)
        self._subscriptions.clear()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TelemetrySession events={len(self.events)} "
            f"samples={len(self.timeline)} metrics={len(self.registry)}>"
        )


__all__ = ["TelemetryConfig", "TelemetrySession"]
