"""Query-lifecycle tracing and the allocation decision audit.

Two observation surfaces on top of the typed event bus (see
``docs/telemetry.md``, "Tracing & decision audit"):

* :mod:`repro.telemetry.tracing.spans` — a **span model** of the query
  life cycle (arrival, per-site queueing, service, transfers,
  retries/backoff, shed/abort) assembled purely from bus events, with
  deterministic span IDs derived from (run seed, query serial);
* :mod:`repro.telemetry.tracing.decisions` — an **allocation decision
  audit**: one record per ``AllocationPolicy.select`` capturing what
  the policy *saw* (masked/stale loads), the *true* instantaneous
  loads, and the per-decision staleness age and ex-post regret;
* :mod:`repro.telemetry.tracing.export` — byte-deterministic exporters:
  Chrome trace-event / Perfetto JSON for spans, JSONL for decision
  records.

Both collectors subscribe to their event types *explicitly*, which is
what arms the opt-in ``wants_type``-guarded emissions
(:class:`~repro.telemetry.events.AllocationDecided`,
:class:`~repro.telemetry.events.ServiceFinished`): with no collector
attached the instrumented sites cost one attribute test and construct
nothing, and catch-all event logs never see the opt-in events at all.
"""

from repro.telemetry.tracing.decisions import (
    DecisionAudit,
    DecisionRecord,
    DecisionSummary,
    decision_cost,
    record_from_event,
)
from repro.telemetry.tracing.export import (
    TRACE_FORMAT_VERSION,
    decision_from_dict,
    decision_to_dict,
    decisions_from_jsonl,
    decisions_to_jsonl,
    read_decisions_jsonl,
    read_spans_chrome,
    span_from_dict,
    span_to_dict,
    spans_from_chrome_json,
    spans_to_chrome_json,
    write_decisions_jsonl,
    write_spans_chrome,
)
from repro.telemetry.tracing.spans import (
    Span,
    SpanCollector,
    SpanSummary,
    span_id,
)

__all__ = [
    # spans
    "Span",
    "SpanCollector",
    "SpanSummary",
    "span_id",
    # decisions
    "DecisionAudit",
    "DecisionRecord",
    "DecisionSummary",
    "decision_cost",
    "record_from_event",
    # export
    "TRACE_FORMAT_VERSION",
    "span_to_dict",
    "span_from_dict",
    "spans_to_chrome_json",
    "spans_from_chrome_json",
    "write_spans_chrome",
    "read_spans_chrome",
    "decision_to_dict",
    "decision_from_dict",
    "decisions_to_jsonl",
    "decisions_from_jsonl",
    "write_decisions_jsonl",
    "read_decisions_jsonl",
]
