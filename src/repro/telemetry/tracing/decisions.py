"""The allocation decision audit: staleness and ex-post regret.

Every ``AllocationPolicy.select`` call produces one opt-in
:class:`~repro.telemetry.events.AllocationDecided` event carrying the
:class:`~repro.model.view.SystemView` snapshot the policy *saw* (the
masked or stale per-site loads), the *true* instantaneous load-board
counts at the same instant, the chosen site, and the optimizer's
service/transfer estimates.  :func:`record_from_event` turns that into
a :class:`DecisionRecord` with two derived observables:

* **staleness** — the age of the load information the policy consulted
  (0.0 under the paper's oracle load board; positive under the
  stale-info extension);
* **regret** — the estimated response-time cost of the chosen site
  minus the cost of the ex-post best site, both computed over the
  *true* loads with the same Figure 6 cost model the optimizing
  policies use (see :func:`decision_cost`).  A decision made on stale
  or masked information can pick a site that looks lightest but is
  not; regret quantifies exactly how much that staleness cost.

Everything needed to recompute cost/best/regret is stored *in the
record itself* (loads, candidates, the three estimates), so the audit
is auditable: tests brute-force the aggregates from the raw fields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.telemetry.bus import EventBus, Subscription
from repro.telemetry.events import AllocationDecided, TelemetryEvent


def decision_cost(
    load: int,
    est_service: float,
    est_transfer: float,
    est_return: float,
    remote: bool,
) -> float:
    """Figure 6's estimated response time of running at one site.

    ``(load + 1)`` queries (the committed queries plus this one) share
    the site, each costing the optimizer's total service estimate; a
    remote choice additionally pays the query and result transfers.
    """
    cost = (load + 1) * est_service
    if remote:
        cost += est_transfer + est_return
    return cost


@dataclass(frozen=True)
class DecisionRecord:
    """One audited allocation decision.

    The event's comma-joined load strings are decoded back into integer
    tuples; ``cost_chosen``/``cost_best``/``best_site``/``regret`` are
    derived (via :func:`decision_cost` over ``true_loads``) but stored
    so records are self-contained for export and brute-force checking.

    Attributes:
        time: Decision instant (simulated time).
        qid: The query being allocated.
        class_name: The query's class.
        home_site: Site whose terminal issued the query.
        chosen_site: The site the policy selected.
        staleness: Age of the load information the policy saw.
        seen_loads: Per-site loads as the policy saw them.
        true_loads: The live load board's counts at the same instant.
        candidates: Candidate sites the view offered.
        est_service: Optimizer's total service estimate for the query.
        est_transfer: Estimated query-transfer time.
        est_return: Estimated result-return time.
        attempt: Allocation attempt number (0 for the first attempt).
        cost_chosen: :func:`decision_cost` of the chosen site on the
            true loads.
        cost_best: The minimum cost over the candidates.
        best_site: The arg-min candidate (lowest index on ties).
        regret: ``cost_chosen - cost_best`` (>= 0).
    """

    time: float
    qid: int
    class_name: str
    home_site: int
    chosen_site: int
    staleness: float
    seen_loads: Tuple[int, ...]
    true_loads: Tuple[int, ...]
    candidates: Tuple[int, ...]
    est_service: float
    est_transfer: float
    est_return: float
    attempt: int
    cost_chosen: float
    cost_best: float
    best_site: int
    regret: float

    @property
    def optimal(self) -> bool:
        """Whether the decision was ex-post optimal (zero regret)."""
        return self.chosen_site == self.best_site


def _decode(joined: str) -> Tuple[int, ...]:
    if not joined:
        return ()
    return tuple(map(int, joined.split(",")))


def record_from_event(event: AllocationDecided) -> DecisionRecord:
    """Derive the full audit record from one opt-in decision event.

    Cost/best/regret are computed with :func:`decision_cost` over the
    *true* loads: what the decision actually cost, not what the policy
    believed.  Ties break toward the lowest site index, matching the
    optimizing policies' deterministic tie-break.
    """
    true_loads = _decode(event.true_loads)
    candidates = _decode(event.candidates)
    home = event.home_site
    est_service = event.est_service
    remote_penalty = event.est_transfer + event.est_return

    def cost_at(site: int) -> float:
        cost = (true_loads[site] + 1) * est_service
        if site != home:
            cost += remote_penalty
        return cost

    cost_chosen = cost_at(event.chosen_site)
    # min over (cost, site): ties break toward the lowest site index.
    best_site = candidates[0]
    cost_best = cost_at(best_site)
    for site in candidates[1:]:
        cost = cost_at(site)
        if cost < cost_best or (cost == cost_best and site < best_site):
            cost_best = cost
            best_site = site
    return DecisionRecord(
        time=event.time,
        qid=event.qid,
        class_name=event.class_name,
        home_site=home,
        chosen_site=event.chosen_site,
        staleness=event.staleness,
        seen_loads=_decode(event.seen_loads),
        true_loads=true_loads,
        candidates=candidates,
        est_service=event.est_service,
        est_transfer=event.est_transfer,
        est_return=event.est_return,
        attempt=event.attempt,
        cost_chosen=cost_chosen,
        cost_best=cost_best,
        best_site=best_site,
        regret=cost_chosen - cost_best,
    )


@dataclass(frozen=True)
class DecisionSummary:
    """Roll-up of one run's decision audit (``SystemResults.decisions``).

    Attributes:
        count: Audited decisions.
        mean_staleness: Mean load-information age across decisions.
        max_staleness: Worst-case age.
        mean_regret: Mean ex-post regret (estimated-response-time units).
        max_regret: Worst single decision.
        total_regret: Sum of all regrets.
        optimal_fraction: Fraction of decisions that picked the ex-post
            best site.
    """

    count: int
    mean_staleness: float
    max_staleness: float
    mean_regret: float
    max_regret: float
    total_regret: float
    optimal_fraction: float


class DecisionAudit:
    """Collect :class:`DecisionRecord` for every allocation decision.

    Subscribing explicitly to ``AllocationDecided`` is what arms the
    ``wants_type``-guarded emission in ``DistributedDatabase``; with no
    audit attached the decision path costs one attribute test.  Managed
    automatically by :class:`~repro.telemetry.session.TelemetrySession`
    when ``TelemetryConfig(decisions=True)``.

    During the run the subscribed handler is the event buffer's own
    ``list.append``; decoding the load vectors and scoring the regret
    happen lazily — and incrementally — on the first read of
    :attr:`records` / :meth:`summary`, keeping the audited hot path as
    cheap as possible.
    """

    def __init__(self, bus: EventBus) -> None:
        self._bus = bus
        self._records: List[DecisionRecord] = []
        self._buffer: List[TelemetryEvent] = []
        self._drained = 0
        self._subscriptions: List[Subscription] = [
            bus.subscribe(AllocationDecided, self._buffer.append)
        ]

    def _drain(self) -> None:
        """Score buffered decisions not yet turned into records."""
        buffer = self._buffer
        records = self._records
        while self._drained < len(buffer):
            event = buffer[self._drained]
            self._drained += 1
            assert isinstance(event, AllocationDecided)
            records.append(record_from_event(event))

    @property
    def records(self) -> Tuple[DecisionRecord, ...]:
        """The audited decisions, in decision order (deterministic)."""
        self._drain()
        return tuple(self._records)

    def summary(self) -> DecisionSummary:
        """Roll the audit up into a :class:`DecisionSummary`.

        Sums use :func:`math.fsum` so the aggregates are independent of
        accumulation order (byte-stable across replays).
        """
        self._drain()
        records = self._records
        count = len(records)
        if count == 0:
            return DecisionSummary(
                count=0,
                mean_staleness=0.0,
                max_staleness=0.0,
                mean_regret=0.0,
                max_regret=0.0,
                total_regret=0.0,
                optimal_fraction=0.0,
            )
        total_regret = math.fsum(r.regret for r in records)
        return DecisionSummary(
            count=count,
            mean_staleness=math.fsum(r.staleness for r in records) / count,
            max_staleness=max(r.staleness for r in records),
            mean_regret=total_regret / count,
            max_regret=max(r.regret for r in records),
            total_regret=total_regret,
            optimal_fraction=sum(1 for r in records if r.optimal) / count,
        )

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent); records stay readable."""
        for subscription in self._subscriptions:
            self._bus.unsubscribe(subscription)
        self._subscriptions = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecisionAudit records={len(self._buffer)}>"


__all__ = [
    "DecisionAudit",
    "DecisionRecord",
    "DecisionSummary",
    "decision_cost",
    "record_from_event",
]
