"""Byte-deterministic exporters for spans and decision records.

Two formats, both canonical (sorted keys, compact separators, ``repr``
floats, ``"\\n"`` newlines, trailing newline) so identical runs produce
identical bytes — the property the serial-vs-``--jobs N`` replay tests
and the committed golden digests pin:

* **Chrome trace-event JSON** for spans (:func:`spans_to_chrome_json`)
  — loadable directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  One complete (``"ph": "X"``) event per span:
  ``pid`` 1, ``tid`` the site, ``ts``/``dur`` in simulated time units
  (``displayTimeUnit`` maps them to ms in the viewer).  The full span
  dict rides in ``args`` so the export round-trips exactly.
* **JSONL** for decision records (:func:`decisions_to_jsonl`) — one
  canonical JSON object per line, mirroring the event-stream JSONL
  format of :mod:`repro.telemetry.exporters`.

Neither format participates in experiment cache keys: traces are
observability artifacts, not results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.telemetry.tracing.decisions import DecisionRecord
from repro.telemetry.tracing.spans import Span

#: Version tag embedded in Chrome-trace metadata and decision records.
TRACE_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _canonical(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, no NaN/Infinity."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


# ----------------------------------------------------------------------
# Spans — Chrome trace-event JSON
# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> Dict[str, Any]:
    """Flatten one span into JSON primitives."""
    return {
        "span_id": span.span_id,
        "kind": span.kind,
        "qid": span.qid,
        "site": span.site,
        "start": span.start,
        "end": span.end,
    }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` from :func:`span_to_dict` output."""
    return Span(
        span_id=str(data["span_id"]),
        kind=str(data["kind"]),
        qid=int(data["qid"]),
        site=int(data["site"]),
        start=float(data["start"]),
        end=float(data["end"]),
    )


def spans_to_chrome_json(spans: Sequence[Span]) -> str:
    """Render *spans* as a canonical Chrome trace-event JSON document.

    Complete events (``"ph": "X"``): ``ts`` is the span start, ``dur``
    its duration, ``tid`` the site row, and the exact span dict rides in
    ``args`` (the viewer shows it in the selection panel; the reader
    round-trips from it).  Returns the document with a trailing newline.
    """
    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        trace_events.append(
            {
                "name": f"{span.kind}#{span.qid}",
                "cat": span.kind,
                "ph": "X",
                "ts": span.start,
                "dur": span.end - span.start,
                "pid": 1,
                "tid": span.site,
                "args": span_to_dict(span),
            }
        )
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"trace_format_version": TRACE_FORMAT_VERSION},
    }
    return _canonical(document) + "\n"


def spans_from_chrome_json(text: str) -> Tuple[Span, ...]:
    """Rebuild spans from :func:`spans_to_chrome_json` output.

    Raises:
        ValueError: If the document is not a Chrome trace produced by
            this module (missing ``traceEvents`` or span ``args``).
    """
    document = json.loads(text)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace-event document")
    spans: List[Span] = []
    for entry in document["traceEvents"]:
        args = entry.get("args")
        if not isinstance(args, dict):
            raise ValueError("trace event is missing its span args")
        spans.append(span_from_dict(args))
    return tuple(spans)


def write_spans_chrome(spans: Sequence[Span], path: PathLike) -> None:
    """Write *spans* to *path* as Chrome trace-event JSON."""
    with open(path, "w", encoding="utf-8", newline="\n") as stream:
        stream.write(spans_to_chrome_json(spans))


def read_spans_chrome(path: PathLike) -> Tuple[Span, ...]:
    """Read spans back from a :func:`write_spans_chrome` file."""
    with open(path, "r", encoding="utf-8") as stream:
        return spans_from_chrome_json(stream.read())


# ----------------------------------------------------------------------
# Decision records — JSONL
# ----------------------------------------------------------------------
def decision_to_dict(record: DecisionRecord) -> Dict[str, Any]:
    """Flatten one decision record into JSON primitives."""
    return {
        "time": record.time,
        "qid": record.qid,
        "class_name": record.class_name,
        "home_site": record.home_site,
        "chosen_site": record.chosen_site,
        "staleness": record.staleness,
        "seen_loads": list(record.seen_loads),
        "true_loads": list(record.true_loads),
        "candidates": list(record.candidates),
        "est_service": record.est_service,
        "est_transfer": record.est_transfer,
        "est_return": record.est_return,
        "attempt": record.attempt,
        "cost_chosen": record.cost_chosen,
        "cost_best": record.cost_best,
        "best_site": record.best_site,
        "regret": record.regret,
    }


def decision_from_dict(data: Dict[str, Any]) -> DecisionRecord:
    """Rebuild a :class:`DecisionRecord` from :func:`decision_to_dict`."""
    return DecisionRecord(
        time=float(data["time"]),
        qid=int(data["qid"]),
        class_name=str(data["class_name"]),
        home_site=int(data["home_site"]),
        chosen_site=int(data["chosen_site"]),
        staleness=float(data["staleness"]),
        seen_loads=tuple(int(n) for n in data["seen_loads"]),
        true_loads=tuple(int(n) for n in data["true_loads"]),
        candidates=tuple(int(n) for n in data["candidates"]),
        est_service=float(data["est_service"]),
        est_transfer=float(data["est_transfer"]),
        est_return=float(data["est_return"]),
        attempt=int(data["attempt"]),
        cost_chosen=float(data["cost_chosen"]),
        cost_best=float(data["cost_best"]),
        best_site=int(data["best_site"]),
        regret=float(data["regret"]),
    )


def decisions_to_jsonl(records: Sequence[DecisionRecord]) -> str:
    """Render decision records as canonical JSONL (trailing newline)."""
    return "".join(_canonical(decision_to_dict(r)) + "\n" for r in records)


def decisions_from_jsonl(text: str) -> Tuple[DecisionRecord, ...]:
    """Rebuild decision records from :func:`decisions_to_jsonl` output.

    Blank lines are ignored, mirroring the event-stream JSONL reader.
    """
    records: List[DecisionRecord] = []
    for line in text.splitlines():
        if line.strip():
            records.append(decision_from_dict(json.loads(line)))
    return tuple(records)


def write_decisions_jsonl(
    records: Sequence[DecisionRecord], path: PathLike
) -> None:
    """Write decision records to *path* as canonical JSONL."""
    with open(path, "w", encoding="utf-8", newline="\n") as stream:
        stream.write(decisions_to_jsonl(records))


def read_decisions_jsonl(path: PathLike) -> Tuple[DecisionRecord, ...]:
    """Read decision records back from :func:`write_decisions_jsonl`."""
    with open(path, "r", encoding="utf-8") as stream:
        return decisions_from_jsonl(stream.read())


__all__ = [
    "TRACE_FORMAT_VERSION",
    "span_to_dict",
    "span_from_dict",
    "spans_to_chrome_json",
    "spans_from_chrome_json",
    "write_spans_chrome",
    "read_spans_chrome",
    "decision_to_dict",
    "decision_from_dict",
    "decisions_to_jsonl",
    "decisions_from_jsonl",
    "write_decisions_jsonl",
    "read_decisions_jsonl",
]
