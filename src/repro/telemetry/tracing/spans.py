"""The span model: the query life cycle as timed, typed intervals.

A :class:`Span` is one contiguous interval of a query's life — created
purely from bus events, never from live model objects, so span streams
are comparable byte-for-byte across runs and safe to hold after a run.

Span kinds (one row per event pairing):

==================  =====================================================
Kind                Interval
==================  =====================================================
``query``           ``QueryCreated`` → ``QueryCompleted`` (or
                    ``QueryLost`` under faults) — the full life cycle.
``queue``           ``QueryAllocated`` → ``ServiceStarted`` — committed
                    to a site but not yet executing (includes any subnet
                    transit toward a remote site).
``service``         ``ServiceStarted`` → ``ServiceFinished`` — the
                    disk/CPU cycles at the execution site.
``transfer.query``  one ``QueryTransferred(kind="query")`` — the channel
                    occupancy estimate of the descriptor's hop.
``transfer.result`` same for the result hop home.
``backoff``         one ``QueryRetried`` — the exponential-backoff wait
                    before re-entering allocation.
``abort``           instant — a site crash aborted the query.
``drop``            instant — the subnet lost a transfer.
``lost``            instant — the retry budget ran out.
``shed``            instant — admission control dropped an open-workload
                    arrival (``qid`` is -1: the arrival never became a
                    query; the span ID derives from its site and serial).
==================  =====================================================

**Deterministic span IDs.** Every ID is a BLAKE2b-64 digest of
``(run seed, query serial, kind, per-query kind index)`` — see
:func:`span_id` — so serial and ``--jobs N`` replays produce identical
IDs, and two runs differing only in seed share none.

The :class:`SpanCollector` subscribes to its event types *explicitly*
(never catch-all), which is exactly what arms the opt-in
``wants_type``-guarded :class:`~repro.telemetry.events.ServiceFinished`
emission in the model.

**Deferred assembly.** During the run the collector only appends events
to a buffer (the subscribed handler *is* ``list.append``, the cheapest
possible hot-path cost); the pairing, hashing, and ``Span``
construction happen lazily — and incrementally — on the first read of
:attr:`spans` / :meth:`summary`.  Because the buffer preserves emission
order, the deferred replay is byte-identical to online assembly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Tuple, Type

from repro.telemetry.bus import EventBus, Subscription
from repro.telemetry.events import (
    MessageDropped,
    QueryAborted,
    QueryAllocated,
    QueryCompleted,
    QueryCreated,
    QueryLost,
    QueryRetried,
    QueryShed,
    QueryTransferred,
    RunStarted,
    ServiceFinished,
    ServiceStarted,
    TelemetryEvent,
)


def span_id(seed: int, serial: int, kind: str, index: int) -> str:
    """The deterministic 16-hex-digit ID of one span.

    Derived from the run's master seed, the query's per-run serial
    (``qid``; the shed arrival's per-site serial for ``shed`` spans),
    the span kind, and the per-query occurrence index of that kind —
    a pure function of run identity, so IDs replay byte-identically
    serial vs ``--jobs N``.
    """
    key = f"{seed}|{serial}|{kind}|{index}".encode("ascii")
    return hashlib.blake2b(key, digest_size=8).hexdigest()


@dataclass(frozen=True)
class Span:
    """One timed interval of a query's life cycle.

    Attributes:
        span_id: Deterministic ID (see :func:`span_id`).
        kind: The span kind (see the module table).
        qid: The query's per-run serial (-1 for ``shed`` spans: the
            arrival never became a query).
        site: The site the interval belongs to (home site for
            ``query``/``backoff``/``lost``, execution site for
            ``queue``/``service``/``abort``, destination for transfers
            and drops, offered site for ``shed``).
        start: Interval start (simulated time).
        end: Interval end; equals ``start`` for instant spans.
    """

    span_id: str
    kind: str
    qid: int
    site: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """``end - start`` (0.0 for instant spans)."""
        return self.end - self.start


@dataclass(frozen=True)
class SpanSummary:
    """Roll-up of one run's span stream (rides ``SystemResults.spans``).

    Attributes:
        count: Finished spans collected.
        queries: Distinct queries that produced at least one span.
        unfinished: Spans still open when the collector closed (query
            in flight at the end of the run); they are not reported.
        kinds: Per-kind span counts, sorted by kind name.
    """

    count: int
    queries: int
    unfinished: int
    kinds: Tuple[Tuple[str, int], ...]


class SpanCollector:
    """Assemble spans from a run's event stream.

    Subscribes on construction (build it *before* ``run()``, exactly
    like :class:`~repro.telemetry.bus.EventLog`); read :attr:`spans`
    and :meth:`summary` after the run, and :meth:`close` to detach.
    Managed automatically by
    :class:`~repro.telemetry.session.TelemetrySession` when
    ``TelemetryConfig(spans=True)``.
    """

    def __init__(self, bus: EventBus) -> None:
        self._bus = bus
        self._seed = 0
        self._finished: List[Span] = []
        #: (qid, kind) -> open span's (start, site, id)
        self._open: Dict[Tuple[int, str], Tuple[float, int, str]] = {}
        #: (qid, kind) -> how many spans of that kind the query produced
        self._indices: Dict[Tuple[int, str], int] = {}
        self._home: Dict[int, int] = {}
        self._qids: Set[int] = set()
        #: Raw events in emission order; replayed lazily (see _drain).
        self._buffer: List[TelemetryEvent] = []
        self._drained = 0
        self._handlers: Dict[
            Type[TelemetryEvent], Callable[[TelemetryEvent], None]
        ] = {
            RunStarted: self._on_run_started,
            QueryCreated: self._on_created,
            QueryAllocated: self._on_allocated,
            ServiceStarted: self._on_service_started,
            ServiceFinished: self._on_service_finished,
            QueryTransferred: self._on_transferred,
            QueryCompleted: self._on_completed,
            QueryAborted: self._on_aborted,
            QueryRetried: self._on_retried,
            QueryLost: self._on_lost,
            MessageDropped: self._on_dropped,
            QueryShed: self._on_shed,
        }
        # The hot-path handler is the buffer's own append — the model's
        # emit sites pay one list append per wanted event, nothing more.
        append = self._buffer.append
        self._subscriptions: List[Subscription] = [
            bus.subscribe(event_type, append) for event_type in self._handlers
        ]

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Replay buffered events not yet assembled (incremental)."""
        buffer = self._buffer
        handlers = self._handlers
        while self._drained < len(buffer):
            event = buffer[self._drained]
            self._drained += 1
            handlers[type(event)](event)

    def _next_id(self, serial: int, kind: str) -> str:
        key = (serial, kind)
        index = self._indices.get(key, 0)
        self._indices[key] = index + 1
        return span_id(self._seed, serial, kind, index)

    def _begin(self, qid: int, kind: str, start: float, site: int) -> None:
        self._open[(qid, kind)] = (start, site, self._next_id(qid, kind))

    def _finish(self, qid: int, kind: str, end: float) -> None:
        entry = self._open.pop((qid, kind), None)
        if entry is None:
            return
        start, site, sid = entry
        self._finished.append(
            Span(span_id=sid, kind=kind, qid=qid, site=site, start=start, end=end)
        )

    def _instant(self, qid: int, kind: str, time: float, site: int) -> None:
        self._finished.append(
            Span(
                span_id=self._next_id(qid, kind),
                kind=kind,
                qid=qid,
                site=site,
                start=time,
                end=time,
            )
        )

    # ------------------------------------------------------------------
    # Bus handlers
    # ------------------------------------------------------------------
    def _on_run_started(self, event: TelemetryEvent) -> None:
        assert isinstance(event, RunStarted)
        self._seed = event.seed

    def _on_created(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryCreated)
        self._qids.add(event.qid)
        self._home[event.qid] = event.home_site
        self._begin(event.qid, "query", event.time, event.home_site)

    def _on_allocated(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryAllocated)
        self._qids.add(event.qid)
        self._begin(event.qid, "queue", event.time, event.execution_site)

    def _on_service_started(self, event: TelemetryEvent) -> None:
        assert isinstance(event, ServiceStarted)
        self._finish(event.qid, "queue", event.time)
        self._begin(event.qid, "service", event.time, event.site)

    def _on_service_finished(self, event: TelemetryEvent) -> None:
        assert isinstance(event, ServiceFinished)
        self._finish(event.qid, "service", event.time)

    def _on_transferred(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryTransferred)
        kind = f"transfer.{event.kind}"
        self._finished.append(
            Span(
                span_id=self._next_id(event.qid, kind),
                kind=kind,
                qid=event.qid,
                site=event.destination,
                start=event.time,
                end=event.time + event.transfer_time,
            )
        )

    def _on_completed(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryCompleted)
        self._finish(event.qid, "query", event.time)

    def _on_aborted(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryAborted)
        # The crash ends whatever phase the query was in at the site.
        self._finish(event.qid, "queue", event.time)
        self._finish(event.qid, "service", event.time)
        self._instant(event.qid, "abort", event.time, event.site)

    def _on_retried(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryRetried)
        site = self._home.get(event.qid, 0)
        self._finished.append(
            Span(
                span_id=self._next_id(event.qid, "backoff"),
                kind="backoff",
                qid=event.qid,
                site=site,
                start=event.time,
                end=event.time + event.backoff,
            )
        )

    def _on_lost(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryLost)
        site = self._home.get(event.qid, 0)
        self._instant(event.qid, "lost", event.time, site)
        self._finish(event.qid, "query", event.time)

    def _on_dropped(self, event: TelemetryEvent) -> None:
        assert isinstance(event, MessageDropped)
        self._instant(event.qid, "drop", event.time, event.destination)

    def _on_shed(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryShed)
        # Shed arrivals never became queries: no qid exists, so the ID
        # derives from the per-site offered serial instead (unique per
        # site; the site number salts the kind to keep IDs distinct
        # across sites sharing a serial).
        self._finished.append(
            Span(
                span_id=span_id(
                    self._seed, event.serial, f"shed.s{event.site}", 0
                ),
                kind="shed",
                qid=-1,
                site=event.site,
                start=event.time,
                end=event.time,
            )
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        """The finished spans, in completion order (deterministic)."""
        self._drain()
        return tuple(self._finished)

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet finished (queries still in flight)."""
        self._drain()
        return len(self._open)

    def summary(self) -> SpanSummary:
        """Roll the collected stream up into a :class:`SpanSummary`."""
        self._drain()
        kinds: Dict[str, int] = {}
        for span in self._finished:
            kinds[span.kind] = kinds.get(span.kind, 0) + 1
        return SpanSummary(
            count=len(self._finished),
            queries=len(self._qids),
            unfinished=len(self._open),
            kinds=tuple(sorted(kinds.items())),
        )

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent); spans stay readable."""
        for subscription in self._subscriptions:
            self._bus.unsubscribe(subscription)
        self._subscriptions = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._drain()
        return (
            f"<SpanCollector finished={len(self._finished)} "
            f"open={len(self._open)}>"
        )


__all__ = ["Span", "SpanCollector", "SpanSummary", "span_id"]
