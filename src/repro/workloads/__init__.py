"""Pluggable workloads: how queries enter the simulated system.

This package is the one workload entry point.  The paper's closed model
(``mpl`` think/submit terminals per site) is the default and stays
byte-identical to the seed; open arrival processes —
:class:`PoissonOpen`, :class:`MMPP`, :class:`DiurnalRate`,
:class:`TraceDriven` — turn the system into an open queueing network
with optional per-site :class:`AdmissionControl`, the heavy-traffic
regime of ROADMAP item 2.

Build a :class:`WorkloadSpec` and hand it to
:class:`repro.runner.RunSpec` (or ``DistributedDatabase(workload=...)``,
or the ``--workload PLAN.json`` CLI flag)::

    from repro.workloads import AdmissionControl, PoissonOpen, WorkloadSpec

    spec = WorkloadSpec(
        arrivals=PoissonOpen(rate=0.08),          # per site
        admission=AdmissionControl(max_pending=64),
    )

See ``docs/workloads.md`` for the arrival-process catalogue and the
determinism discipline (named streams, offered-arrival serial numbers).
"""

from __future__ import annotations

from repro.workloads.arrivals import (
    ArrivalProcess,
    ArrivalSpec,
    ClosedTerminals,
    DiurnalRate,
    MMPP,
    PhaseTrack,
    PoissonOpen,
    TraceDriven,
    next_thinned_gap,
)
from repro.workloads.closed import launch_closed_terminals, terminal_process
from repro.workloads.driver import WorkloadDriver, start_workload
from repro.workloads.errors import WorkloadError
from repro.workloads.spec import (
    AdmissionControl,
    WorkloadSpec,
    estimate_site_capacity,
    normalize_workload,
)

__all__ = [
    "AdmissionControl",
    "ArrivalProcess",
    "ArrivalSpec",
    "ClosedTerminals",
    "DiurnalRate",
    "MMPP",
    "PhaseTrack",
    "PoissonOpen",
    "TraceDriven",
    "WorkloadDriver",
    "WorkloadError",
    "WorkloadSpec",
    "estimate_site_capacity",
    "launch_closed_terminals",
    "next_thinned_gap",
    "normalize_workload",
    "start_workload",
    "terminal_process",
]
