"""Arrival processes: how queries enter the system.

The paper's model is *closed*: ``mpl`` terminals per site in a
think/submit loop, so offered load self-regulates with response time and
the system can never be overloaded.  :class:`ClosedTerminals` keeps that
behaviour (byte-identical to the original wiring); the other processes
open the system:

* :class:`PoissonOpen` — homogeneous Poisson arrivals, per site or
  global (routed uniformly over sites);
* :class:`MMPP` — a cyclic Markov-modulated Poisson process: the
  arrival rate switches between phases (burst / lull) after
  exponential holding times, the standard model for flash crowds;
* :class:`DiurnalRate` — a sinusoidal time-varying intensity realized
  by thinning, the classic diurnal load curve;
* :class:`TraceDriven` — replay of a recorded ``(time, site)`` arrival
  trace (JSONL via :meth:`TraceDriven.from_jsonl`).

Every process draws from its own named random stream
(``workload.<kind>...``), so arrivals are a pure function of
``(seed, spec)`` — adding or removing an arrival process can never
perturb the draws of another activity, and serial vs ``--jobs N``
replays stay byte-identical.

All spec classes are frozen, hashable dataclasses built from primitives
and tuples only, so a :class:`~repro.workloads.spec.WorkloadSpec` can be
folded into the content-addressed cache key and round-tripped through
JSON (:func:`repro.model.serialization.workload_spec_to_dict`).
"""

from __future__ import annotations

import json
import math
import pathlib
import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Generator,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.sim.process import Hold
from repro.workloads.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.config import SystemConfig
    from repro.model.system import DistributedDatabase
    from repro.workloads.driver import WorkloadDriver


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise WorkloadError(f"{name} must be finite, got {value!r}")


@runtime_checkable
class ArrivalProcess(Protocol):
    """The protocol every arrival process implements.

    An arrival process is pure data plus two behaviours: validate itself
    against a concrete system configuration, and launch its driving
    simulation processes.  The built-ins below serialize and enter cache
    keys; custom implementations work at run time but are rejected by
    :func:`repro.model.serialization.workload_spec_to_dict`.
    """

    @property
    def kind(self) -> str:
        """Stable identifier of the process family (its JSON tag)."""
        ...

    def validate_for(self, config: "SystemConfig") -> None:
        """Raise :class:`WorkloadError` if *config* cannot host this process."""
        ...

    def launch(
        self, system: "DistributedDatabase", driver: "WorkloadDriver"
    ) -> None:
        """Start the driving processes on ``system.sim`` (at time 0)."""
        ...


# ----------------------------------------------------------------------
# Pure sampling helpers (unit-testable without a simulator)
# ----------------------------------------------------------------------


def next_thinned_gap(
    rng: random.Random,
    lam_max: float,
    intensity: Callable[[float], float],
    now: float,
) -> float:
    """Gap to the next arrival of a non-homogeneous Poisson process.

    Lewis–Shedler thinning: candidate points arrive at the majorizing
    rate ``lam_max``; a candidate at time ``t`` is accepted with
    probability ``intensity(t) / lam_max``.  The accepted point stream
    is exactly a non-homogeneous Poisson process with rate
    ``intensity``.

    Raises:
        WorkloadError: If ``lam_max`` is not positive or ``intensity``
            ever exceeds it (the majorizer must dominate).
    """
    if not lam_max > 0:
        raise WorkloadError(f"lam_max must be > 0, got {lam_max}")
    t = now
    while True:
        t += rng.expovariate(lam_max)
        rate = intensity(t)
        if rate > lam_max:
            raise WorkloadError(
                f"intensity {rate} exceeds its majorizer lam_max={lam_max}"
            )
        if rng.random() * lam_max < rate:
            return t - now


class PhaseTrack:
    """Lazily realized phase timeline of a cyclic modulating chain.

    Phase ``i`` holds for an exponential time with mean
    ``holding_means[i]``, then the chain moves to phase
    ``(i + 1) % n``.  :meth:`phase_at` realizes the timeline on demand
    for nondecreasing query times, drawing each holding time exactly
    once from the owning stream — so the phase path is a pure function
    of the stream, regardless of how often (or at which times) it is
    observed.
    """

    def __init__(
        self,
        rng: random.Random,
        holding_means: Sequence[float],
        start_phase: int = 0,
    ) -> None:
        if not holding_means:
            raise WorkloadError("need at least one phase holding mean")
        if not 0 <= start_phase < len(holding_means):
            raise WorkloadError(
                f"start_phase {start_phase} out of range for "
                f"{len(holding_means)} phases"
            )
        self._rng = rng
        self._means = tuple(holding_means)
        self._phase = start_phase
        self._next_change = rng.expovariate(1.0 / self._means[start_phase])
        self._last_query = -math.inf

    @property
    def phase(self) -> int:
        """The most recently realized phase."""
        return self._phase

    def phase_at(self, t: float) -> int:
        """The chain's phase at time *t* (*t* must be nondecreasing)."""
        if t < self._last_query:
            raise WorkloadError(
                f"phase_at times must be nondecreasing: {t} after "
                f"{self._last_query}"
            )
        self._last_query = t
        while t >= self._next_change:
            self._phase = (self._phase + 1) % len(self._means)
            self._next_change += self._rng.expovariate(
                1.0 / self._means[self._phase]
            )
        return self._phase


# ----------------------------------------------------------------------
# The built-in arrival processes
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ClosedTerminals:
    """The paper's closed workload: ``mpl`` think/submit terminals per site.

    This is the default; a :class:`~repro.workloads.spec.WorkloadSpec`
    carrying it (and no admission control) normalizes to ``None``, so the
    run — and its cache key and golden digests — is byte-identical to one
    constructed without any workload argument.
    """

    @property
    def kind(self) -> str:
        return "closed"

    def validate_for(self, config: "SystemConfig") -> None:
        if config.site.mpl < 1:
            raise WorkloadError(
                f"closed terminals need mpl >= 1, got {config.site.mpl}"
            )

    def launch(
        self, system: "DistributedDatabase", driver: "WorkloadDriver"
    ) -> None:
        from repro.workloads.closed import launch_closed_terminals

        launch_closed_terminals(system)


@dataclass(frozen=True, slots=True)
class PoissonOpen:
    """Open Poisson arrivals.

    Attributes:
        rate: Arrival rate (> 0) — per site when ``per_site`` is true,
            otherwise the system-wide rate, with each arrival routed to
            a uniformly random home site.
    """

    rate: float
    per_site: bool = True

    def __post_init__(self) -> None:
        _require_finite("rate", self.rate)
        if self.rate <= 0:
            raise WorkloadError(f"rate must be > 0, got {self.rate}")

    @property
    def kind(self) -> str:
        return "poisson"

    def validate_for(self, config: "SystemConfig") -> None:
        del config  # any topology hosts Poisson arrivals

    def launch(
        self, system: "DistributedDatabase", driver: "WorkloadDriver"
    ) -> None:
        if self.per_site:
            for site in range(system.config.num_sites):
                system.sim.launch(
                    _poisson_site_arrivals(system, driver, site, self.rate),
                    name=f"workload.poisson.s{site}",
                )
        else:
            system.sim.launch(
                _poisson_global_arrivals(system, driver, self.rate),
                name="workload.poisson.global",
            )


@dataclass(frozen=True, slots=True)
class MMPP:
    """A cyclic Markov-modulated Poisson process (bursts / flash crowds).

    While the modulating chain sits in phase ``i`` arrivals are Poisson
    with rate ``rates[i]``; the chain holds each phase for an
    exponential time with mean ``mean_holding[i]`` and then advances
    cyclically.  Realized by thinning against ``max(rates)``, with the
    phase path drawn from its own stream, so the modulation and the
    arrival candidates never share draws.

    Attributes:
        rates: Per-phase arrival rates (each >= 0, at least one > 0).
        mean_holding: Per-phase mean holding times (each > 0), same
            length as ``rates``.
        per_site: One independent MMPP per site (true) or a single
            system-wide process routed uniformly (false is not yet
            supported; kept for symmetry and validated away).
    """

    rates: Tuple[float, ...]
    mean_holding: Tuple[float, ...]
    per_site: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", tuple(self.rates))
        object.__setattr__(self, "mean_holding", tuple(self.mean_holding))
        if len(self.rates) < 2:
            raise WorkloadError(
                f"an MMPP needs at least 2 phases, got {len(self.rates)}"
            )
        if len(self.rates) != len(self.mean_holding):
            raise WorkloadError(
                f"{len(self.rates)} rates for {len(self.mean_holding)} "
                "holding means"
            )
        for rate in self.rates:
            _require_finite("rate", rate)
            if rate < 0:
                raise WorkloadError(f"rates must be >= 0, got {rate}")
        if not any(rate > 0 for rate in self.rates):
            raise WorkloadError("at least one MMPP phase rate must be > 0")
        for mean in self.mean_holding:
            _require_finite("mean_holding", mean)
            if mean <= 0:
                raise WorkloadError(f"mean_holding must be > 0, got {mean}")
        if not self.per_site:
            raise WorkloadError("MMPP currently supports per_site=True only")

    @property
    def kind(self) -> str:
        return "mmpp"

    def validate_for(self, config: "SystemConfig") -> None:
        del config

    def launch(
        self, system: "DistributedDatabase", driver: "WorkloadDriver"
    ) -> None:
        for site in range(system.config.num_sites):
            system.sim.launch(
                _mmpp_site_arrivals(system, driver, site, self),
                name=f"workload.mmpp.s{site}",
            )


@dataclass(frozen=True, slots=True)
class DiurnalRate:
    """Sinusoidal time-varying arrivals (the diurnal load curve).

    The per-site intensity is
    ``base_rate * (1 + amplitude * sin(2*pi*t / period))`` — peaks at
    ``base_rate * (1 + amplitude)``, troughs at
    ``base_rate * (1 - amplitude)`` — realized exactly by thinning.

    Attributes:
        base_rate: Mean arrival rate per site (> 0).
        amplitude: Relative swing around the mean, in ``[0, 1]``.
        period: Length of one full day/cycle in simulated time (> 0).
    """

    base_rate: float
    amplitude: float
    period: float
    per_site: bool = True

    def __post_init__(self) -> None:
        _require_finite("base_rate", self.base_rate)
        _require_finite("amplitude", self.amplitude)
        _require_finite("period", self.period)
        if self.base_rate <= 0:
            raise WorkloadError(f"base_rate must be > 0, got {self.base_rate}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise WorkloadError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )
        if self.period <= 0:
            raise WorkloadError(f"period must be > 0, got {self.period}")
        if not self.per_site:
            raise WorkloadError(
                "DiurnalRate currently supports per_site=True only"
            )

    @property
    def kind(self) -> str:
        return "diurnal"

    def intensity_at(self, t: float) -> float:
        """The instantaneous arrival rate at simulated time *t*."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    @property
    def peak_rate(self) -> float:
        """The majorizing rate used for thinning."""
        return self.base_rate * (1.0 + self.amplitude)

    def validate_for(self, config: "SystemConfig") -> None:
        del config

    def launch(
        self, system: "DistributedDatabase", driver: "WorkloadDriver"
    ) -> None:
        for site in range(system.config.num_sites):
            system.sim.launch(
                _diurnal_site_arrivals(system, driver, site, self),
                name=f"workload.diurnal.s{site}",
            )


@dataclass(frozen=True, slots=True)
class TraceDriven:
    """Replay a recorded arrival trace.

    Attributes:
        arrivals: ``(time, site)`` pairs, nondecreasing in time.  Stored
            inline (not as a file path) so the spec stays hashable and
            content-addressed: two runs replaying the same trace share a
            cache key, whatever file it came from.
    """

    arrivals: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        normalized = tuple(
            (float(time), int(site)) for time, site in self.arrivals
        )
        object.__setattr__(self, "arrivals", normalized)
        if not normalized:
            raise WorkloadError("a trace-driven workload needs >= 1 arrival")
        previous = 0.0
        for time, site in normalized:
            _require_finite("arrival time", time)
            if time < previous:
                raise WorkloadError(
                    f"trace times must be nondecreasing: {time} after "
                    f"{previous}"
                )
            if time < 0:
                raise WorkloadError(f"arrival times must be >= 0, got {time}")
            if site < 0:
                raise WorkloadError(f"sites must be >= 0, got {site}")
            previous = time

    @classmethod
    def from_jsonl(cls, path: Union[str, pathlib.Path]) -> "TraceDriven":
        """Load a trace from JSONL: one ``{"time": t, "site": s}`` per line."""
        arrivals = []
        text = pathlib.Path(path).read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                arrivals.append((float(record["time"]), int(record["site"])))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                raise WorkloadError(
                    f"{path}:{lineno}: expected a "
                    '{"time": <number>, "site": <int>} record'
                ) from None
        return cls(arrivals=tuple(arrivals))

    @property
    def kind(self) -> str:
        return "trace"

    def validate_for(self, config: "SystemConfig") -> None:
        for _, site in self.arrivals:
            if site >= config.num_sites:
                raise WorkloadError(
                    f"trace names site {site}, but the system has only "
                    f"{config.num_sites} sites"
                )

    def launch(
        self, system: "DistributedDatabase", driver: "WorkloadDriver"
    ) -> None:
        system.sim.launch(
            _trace_arrivals(system, driver, self.arrivals),
            name="workload.trace",
        )


#: The serializable arrival-process types (what cache keys understand).
ArrivalSpec = Union[ClosedTerminals, PoissonOpen, MMPP, DiurnalRate, TraceDriven]


# ----------------------------------------------------------------------
# Driving processes (generators launched on the simulator)
# ----------------------------------------------------------------------


def _poisson_site_arrivals(
    system: "DistributedDatabase",
    driver: "WorkloadDriver",
    site: int,
    rate: float,
) -> Generator[object, object, None]:
    """One site's Poisson arrival stream."""
    rng = system.sim.rng.stream(f"workload.poisson.s{site}")
    while True:
        yield Hold(rng.expovariate(rate))
        driver.submit(site)


def _poisson_global_arrivals(
    system: "DistributedDatabase", driver: "WorkloadDriver", rate: float
) -> Generator[object, object, None]:
    """The system-wide Poisson stream, routed uniformly over sites."""
    gap_rng = system.sim.rng.stream("workload.poisson.global")
    route_rng = system.sim.rng.stream("workload.poisson.route")
    num_sites = system.config.num_sites
    while True:
        yield Hold(gap_rng.expovariate(rate))
        driver.submit(route_rng.randrange(num_sites))


def _mmpp_site_arrivals(
    system: "DistributedDatabase",
    driver: "WorkloadDriver",
    site: int,
    spec: MMPP,
) -> Generator[object, object, None]:
    """One site's MMPP stream: thinning against the phase-modulated rate."""
    sim = system.sim
    rng = sim.rng.stream(f"workload.mmpp.s{site}")
    track = PhaseTrack(
        sim.rng.stream(f"workload.mmpp.phase.s{site}"), spec.mean_holding
    )
    rates = spec.rates
    lam_max = max(rates)

    def modulated(t: float) -> float:
        return rates[track.phase_at(t)]

    while True:
        yield Hold(next_thinned_gap(rng, lam_max, modulated, sim.now))
        driver.submit(site)


def _diurnal_site_arrivals(
    system: "DistributedDatabase",
    driver: "WorkloadDriver",
    site: int,
    spec: DiurnalRate,
) -> Generator[object, object, None]:
    """One site's diurnal stream: thinning against the sinusoid's peak."""
    sim = system.sim
    rng = sim.rng.stream(f"workload.diurnal.s{site}")
    peak = spec.peak_rate
    while True:
        yield Hold(next_thinned_gap(rng, peak, spec.intensity_at, sim.now))
        driver.submit(site)


def _trace_arrivals(
    system: "DistributedDatabase",
    driver: "WorkloadDriver",
    arrivals: Tuple[Tuple[float, int], ...],
) -> Generator[object, object, None]:
    """Replay a recorded trace (no randomness at all)."""
    sim = system.sim
    for time, site in arrivals:
        gap = time - sim.now
        if gap > 0:
            yield Hold(gap)
        driver.submit(site)


__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "ClosedTerminals",
    "PoissonOpen",
    "MMPP",
    "DiurnalRate",
    "TraceDriven",
    "PhaseTrack",
    "next_thinned_gap",
]
