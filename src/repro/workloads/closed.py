"""The paper's closed workload: think/submit terminal loops.

Each site has ``mpl`` terminals (the paper's multiprogramming level).  A
terminal is an endless think/submit loop: it thinks for an exponential
period, issues one query, waits for that query's results to come home,
and thinks again.  The closed-loop structure means system load
self-regulates with response time, exactly as in the paper's closed
queueing model.

This module is the one owner of the terminal processes; the old
``repro.model.terminals`` location survives as a deprecation shim that
re-exports from here.  Stream names (``think.s{site}.t{terminal}``),
process launch names and launch order are unchanged from the seed, so a
closed run is byte-identical whether it was requested via the default,
an explicit :class:`~repro.workloads.arrivals.ClosedTerminals`, or the
pre-redesign wiring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.process import Hold

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase


def terminal_process(
    system: "DistributedDatabase", site_index: int, terminal_id: int
) -> Generator[object, object, None]:
    """Generator body of one terminal (think → query → wait → repeat)."""
    sim = system.sim
    think_rng = sim.rng.stream(f"think.s{site_index}.t{terminal_id}")
    serial = 0
    while True:
        think = system.workload.think_time(think_rng)
        if think > 0:
            yield Hold(think)
        serial += 1
        query, query_rng = system.workload.new_query(
            site_index, terminal_id, serial
        )
        yield from system.execute_query(query, query_rng)


def launch_closed_terminals(system: "DistributedDatabase") -> None:
    """Launch every terminal process of every site."""
    for site_index in range(system.config.num_sites):
        for terminal_id in range(system.config.site.mpl):
            system.sim.launch(
                terminal_process(system, site_index, terminal_id),
                name=f"terminal.s{site_index}.t{terminal_id}",
            )


__all__ = ["terminal_process", "launch_closed_terminals"]
