"""The workload driver: admission, shedding, and open-query processes.

:func:`start_workload` is the one entry point the system constructor
calls.  With no spec (or the default closed spec, already normalized to
``None``) it launches the paper's terminals and nothing else — the run
is byte-identical to the seed.  With an open spec it builds a
:class:`WorkloadDriver` and hands it to the arrival process, which
launches its driving simulation processes.

Admission accounting lives here, not in the arrival processes: every
arrival calls :meth:`WorkloadDriver.submit`, which either sheds the
query (bounded per-site pending count exceeded) or admits it and
launches a one-shot query process.  Serial numbers are allocated to
*offered* arrivals — shed or admitted — so the derived random stream of
the ``n``-th arrival at a site never depends on the admission limit, and
runs differing only in ``max_pending`` face literally the same query
sequence (the common-random-numbers discipline, extended to open
arrivals).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from repro.model.metrics import WorkloadSummary
from repro.telemetry.events import QueryShed
from repro.workloads.closed import launch_closed_terminals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase
    from repro.workloads.spec import WorkloadSpec


class WorkloadDriver:
    """Run-time state of one open workload: admission and counters.

    Attributes:
        pending: Per-site count of admitted open queries currently in
            the system (queued, executing, or in transit).
        offered: Arrivals offered since the last statistics reset.
        admitted: Arrivals admitted since the last statistics reset.
        shed: Arrivals shed since the last statistics reset.
    """

    def __init__(
        self, system: "DistributedDatabase", spec: "WorkloadSpec"
    ) -> None:
        self.system = system
        self.spec = spec
        num_sites = system.config.num_sites
        self.pending: List[int] = [0] * num_sites
        # Serial numbers key derived random streams, so they are never
        # reset: the n-th arrival at a site draws the same stream whether
        # or not a warmup truncation happened in between.
        self._serials: List[int] = [0] * num_sites
        self.offered = 0
        self.admitted = 0
        self.shed = 0

    @property
    def max_pending(self) -> Optional[int]:
        admission = self.spec.admission
        return None if admission is None else admission.max_pending

    def submit(self, site: int) -> None:
        """One arrival at *site*: admit it or shed it."""
        self._serials[site] += 1
        serial = self._serials[site]
        self.offered += 1
        limit = self.max_pending
        if limit is not None and self.pending[site] >= limit:
            self.shed += 1
            sim = self.system.sim
            bus = sim.bus
            if bus.active and bus.wants(QueryShed):
                bus.emit(
                    QueryShed(
                        time=sim.now,
                        site=site,
                        serial=serial,
                        pending=self.pending[site],
                    )
                )
            return
        self.admitted += 1
        self.pending[site] += 1
        self.system.sim.launch(
            self._open_query(site, serial),
            name=f"workload.query.s{site}.n{serial}",
        )

    def _open_query(
        self, site: int, serial: int
    ) -> Generator[object, object, None]:
        """One admitted open query, arrival to results-home."""
        system = self.system
        query, query_rng = system.workload.new_open_query(site, serial)
        try:
            yield from system.execute_query(query, query_rng)
        finally:
            self.pending[site] -= 1

    def reset_statistics(self) -> None:
        """Truncate the admission counters (end of warmup).

        Pending counts and serial numbers survive: they are system
        state, not statistics.
        """
        self.offered = 0
        self.admitted = 0
        self.shed = 0

    def summary(self) -> WorkloadSummary:
        """Package the admission counters for :class:`SystemResults`."""
        shed_fraction = self.shed / self.offered if self.offered > 0 else 0.0
        return WorkloadSummary(
            kind=self.spec.kind,
            offered=self.offered,
            admitted=self.admitted,
            shed=self.shed,
            shed_fraction=shed_fraction,
        )


def start_workload(system: "DistributedDatabase") -> None:
    """Launch whatever drives queries into *system* (constructor hook).

    Reads ``system.workload_spec`` (already normalized: ``None`` means
    the paper's closed model) and populates ``system.workload_driver``
    for open specs.
    """
    spec = system.workload_spec
    if spec is None:
        launch_closed_terminals(system)
        return
    spec.validate_for(system.config)
    driver = WorkloadDriver(system, spec)
    system.workload_driver = driver
    spec.arrivals.launch(system, driver)


__all__ = ["WorkloadDriver", "start_workload"]
