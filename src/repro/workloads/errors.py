"""Errors raised by the workload subsystem."""

from __future__ import annotations


class WorkloadError(Exception):
    """An invalid workload specification or arrival-process parameter."""


__all__ = ["WorkloadError"]
