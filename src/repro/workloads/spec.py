"""The workload specification: what drives queries into the system.

A :class:`WorkloadSpec` pairs an arrival process with optional per-site
admission control.  It is frozen and hashable (like
:class:`repro.faults.FaultPlan`) so it can ride inside
:class:`repro.runner.RunSpec`, fold into content-addressed cache keys,
and round-trip through JSON.

The default spec — :class:`~repro.workloads.arrivals.ClosedTerminals`
with no admission control — *is* the paper's closed model, so
:func:`normalize_workload` maps it to ``None``: a run asking for the
default workload is byte-identical (cache key included) to a run that
never mentioned workloads at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.workloads.arrivals import ArrivalSpec, ClosedTerminals
from repro.workloads.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.config import SystemConfig


@dataclass(frozen=True, slots=True)
class AdmissionControl:
    """Bounded per-site admission of open-system queries.

    When a site already has ``max_pending`` admitted open queries in the
    system (queued, executing, or in transit), new arrivals at that site
    are shed: counted, reported in
    :class:`repro.model.metrics.WorkloadSummary`, and surfaced as
    :class:`repro.telemetry.events.QueryShed` events — but never
    executed.  This is what lets an open run survive offered loads past
    saturation instead of growing queues without bound.

    Attributes:
        max_pending: Admission limit per site (>= 1).
    """

    max_pending: int

    def __post_init__(self) -> None:
        if not isinstance(self.max_pending, int) or isinstance(
            self.max_pending, bool
        ):
            raise WorkloadError(
                f"max_pending must be an int, got {self.max_pending!r}"
            )
        if self.max_pending < 1:
            raise WorkloadError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A complete workload description for one run.

    Attributes:
        arrivals: The arrival process (defaults to the paper's closed
            terminals).
        admission: Optional per-site admission control.  Only meaningful
            for open arrival processes — combining it with
            :class:`ClosedTerminals` is rejected, because closed
            terminals self-regulate and never shed.
    """

    arrivals: ArrivalSpec = field(default_factory=ClosedTerminals)
    admission: Optional[AdmissionControl] = None

    def __post_init__(self) -> None:
        if isinstance(self.arrivals, ClosedTerminals) and (
            self.admission is not None
        ):
            raise WorkloadError(
                "admission control does not apply to closed terminals "
                "(a closed workload self-regulates and never sheds)"
            )

    @property
    def kind(self) -> str:
        """The arrival process's kind tag (``"closed"``, ``"poisson"``, ...)."""
        return self.arrivals.kind

    def is_default(self) -> bool:
        """True when this spec describes exactly the seed's closed model."""
        return isinstance(self.arrivals, ClosedTerminals) and (
            self.admission is None
        )

    def validate_for(self, config: "SystemConfig") -> None:
        """Raise :class:`WorkloadError` if *config* cannot host this spec."""
        self.arrivals.validate_for(config)


def normalize_workload(
    workload: Optional[WorkloadSpec],
) -> Optional[WorkloadSpec]:
    """Map the default closed spec to ``None``.

    Mirrors how no-op :class:`~repro.faults.FaultPlan` values normalize
    away: every layer (``RunSpec``, ``RunSettings``,
    ``ReplicationTask``, ``DistributedDatabase``) applies this, so a
    run with the explicit default workload shares cache keys — and
    byte-identical results — with a run that never set one.
    """
    if workload is None:
        return None
    if not isinstance(workload, WorkloadSpec):
        raise WorkloadError(
            f"expected a WorkloadSpec or None, got {type(workload).__name__}"
        )
    if workload.is_default():
        return None
    return workload


def estimate_site_capacity(config: "SystemConfig") -> float:
    """Rough per-site service capacity, in queries per simulated time unit.

    Uses the mean total demand (CPU + disk, whichever binds) of an
    average query under *config*.  This is a planning aid for choosing
    open arrival rates around saturation — not a queueing-theoretic
    bound — and intentionally ignores remote-execution messaging costs.
    """
    site = config.site
    cpu_demand = 0.0
    disk_demand = 0.0
    for prob, spec in zip(config.class_probs, config.classes):
        cpu_demand += prob * spec.num_reads * spec.page_cpu_time
        disk_demand += prob * spec.num_reads * site.disk_time
    disk_demand /= max(site.num_disks, 1)
    binding = max(cpu_demand, disk_demand)
    if not binding > 0 or not math.isfinite(binding):
        raise WorkloadError(
            f"cannot estimate capacity: mean binding demand is {binding}"
        )
    return 1.0 / binding


__all__ = [
    "AdmissionControl",
    "WorkloadSpec",
    "normalize_workload",
    "estimate_site_capacity",
]
