"""Catalog builders and the committed specs under studies/."""

import json
import pathlib

import pytest

from repro.ablation import build_study, expand, study_names
from repro.ablation.spec import study_spec_from_dict, study_spec_to_dict
from repro.experiments.runconfig import STANDARD

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
STUDIES_DIR = REPO_ROOT / "studies"


class TestBuilders:
    def test_names_are_stable(self):
        assert study_names() == (
            "core",
            "stale-info",
            "disk-organization",
            "update-fraction",
            "heterogeneity",
            "subnet-scaling",
            "smoke",
        )

    @pytest.mark.parametrize("name", study_names())
    def test_every_study_builds_and_expands(self, name):
        spec = build_study(name, STANDARD)
        grid = expand(spec)
        assert spec.name == name
        assert len(grid.cells) >= 1
        # Run IDs are unique across the grid: no two cells alias.
        ids = [rid for _, cell_ids in grid.run_ids() for rid in cell_ids]
        assert len(ids) == len(set(ids))

    def test_unknown_study(self):
        with pytest.raises(KeyError):
            build_study("nonexistent")

    def test_core_study_covers_a1_to_a4(self):
        spec = build_study("core")
        assert [c.name for c in spec.components] == [
            "disk-organization",
            "load-info-staleness",
            "estimator",
            "allocation-information",
        ]
        assert spec.baseline.policy == "LERT"

    def test_smoke_ignores_scale_settings(self):
        from repro.ablation.catalog import SMOKE_SETTINGS

        assert build_study("smoke", STANDARD).settings == SMOKE_SETTINGS


class TestCommittedSpecs:
    """studies/*.json is generated from the catalog; the two must agree.

    On drift, run ``python tools/gen_studies.py`` and commit the result.
    """

    @pytest.mark.parametrize("name", study_names())
    def test_committed_spec_matches_catalog(self, name):
        path = STUDIES_DIR / f"{name}.json"
        assert path.exists(), f"missing {path}; run tools/gen_studies.py"
        committed = json.loads(path.read_text(encoding="utf-8"))
        assert committed == study_spec_to_dict(build_study(name, STANDARD))

    @pytest.mark.parametrize("name", study_names())
    def test_committed_spec_loads(self, name):
        data = json.loads(
            (STUDIES_DIR / f"{name}.json").read_text(encoding="utf-8")
        )
        spec = study_spec_from_dict(data)
        assert spec == build_study(name, STANDARD)

    def test_no_orphan_spec_files(self):
        committed = {p.stem for p in STUDIES_DIR.glob("*.json")}
        assert committed == set(study_names())
