"""Grid expansion: determinism, run-ID stability, cache-key identity."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.ablation import BASELINE_LABEL, build_study, expand
from repro.ablation.spec import BaselineRun, Component, StudySpec, Variant
from repro.experiments.cache import cache_key
from repro.experiments.runconfig import RunSettings
from repro.model.config import paper_defaults

HERE = pathlib.Path(__file__).resolve().parent
GOLDEN = HERE / "golden_smoke_run_ids.json"

SMALL = RunSettings(warmup=50.0, duration=200.0, replications=2, base_seed=7)


def two_component_spec() -> StudySpec:
    return StudySpec(
        name="two",
        title="Two components",
        description="",
        metric="waiting_time",
        config=paper_defaults(num_sites=2, mpl=3),
        baseline=BaselineRun(policy="LOCAL"),
        settings=SMALL,
        components=(
            Component(
                name="policy",
                description="",
                variants=(
                    Variant(name="bnq", policy="BNQ"),
                    Variant(name="lert", policy="LERT"),
                ),
            ),
            Component(
                name="mpl",
                description="",
                variants=(Variant(name="mpl-6", config_patches=(("site.mpl", 6),)),),
            ),
        ),
    )


class TestExpansion:
    def test_cell_layout(self):
        grid = expand(two_component_spec())
        assert grid.baseline.label == BASELINE_LABEL
        assert [c.label for c in grid.cells] == [
            "policy:bnq",
            "policy:lert",
            "mpl:mpl-6",
        ]
        # One task per replication, in replication order.
        for cell in grid.all_cells():
            assert len(cell.tasks) == SMALL.replications
            assert [t.seed for t in cell.tasks] == [
                SMALL.seed_for(0),
                SMALL.seed_for(1),
            ]

    def test_crn_pairing_shares_seeds_across_cells(self):
        grid = expand(two_component_spec())
        seeds = {tuple(t.seed for t in cell.tasks) for cell in grid.all_cells()}
        assert len(seeds) == 1  # every cell faces the same seed stream

    def test_variant_overrides_apply(self):
        grid = expand(two_component_spec())
        assert grid.cell("policy:bnq").tasks[0].policy == "BNQ"
        assert grid.cell("mpl:mpl-6").tasks[0].config.site.mpl == 6
        # Unpatched components stay at baseline.
        assert grid.cell("mpl:mpl-6").tasks[0].policy == "LOCAL"

    def test_expansion_is_pure(self):
        spec = two_component_spec()
        assert expand(spec).run_ids() == expand(spec).run_ids()

    def test_run_ids_are_cache_keys(self):
        grid = expand(two_component_spec())
        task = grid.cell("policy:bnq").tasks[0]
        expected = cache_key(
            task.config,
            task.policy,
            seed=task.seed,
            warmup=task.warmup,
            duration=task.duration,
            system_kind=task.system_kind,
            system_kwargs=task.system_kwargs,
            faults=task.faults,
            workload=task.workload,
        )
        assert grid.cell("policy:bnq").run_ids[0] == expected

    def test_unknown_cell_label(self):
        with pytest.raises(KeyError):
            expand(two_component_spec()).cell("policy:unknown")

    def test_faults_on_extension_kind_error_names_the_cell(self):
        from repro.faults.plan import FaultPlan, SiteOutage

        spec = two_component_spec()
        bad = StudySpec(
            name=spec.name,
            title=spec.title,
            description=spec.description,
            metric=spec.metric,
            config=spec.config,
            baseline=spec.baseline,
            settings=spec.settings,
            components=(
                Component(
                    name="broken",
                    description="",
                    variants=(
                        Variant(
                            name="stale-faulted",
                            system_kind="stale",
                            system_kwargs=(("refresh_interval", 5.0),),
                            faults=FaultPlan(
                                site_outages=(
                                    SiteOutage(site=0, at=60.0, duration=10.0),
                                )
                            ),
                        ),
                    ),
                ),
            ),
        )
        with pytest.raises(ValueError, match="stale-faulted"):
            expand(bad)


class TestGoldenRunIds:
    """The smoke study's run IDs are pinned bytes.

    If this test fails, the content-addressed key of some run changed:
    either the cache format version was bumped intentionally (regenerate
    the golden file) or a refactor silently changed simulated behavior.
    """

    def test_smoke_run_ids_match_golden(self):
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        grid = expand(build_study("smoke"))
        assert {label: list(ids) for label, ids in grid.run_ids()} == golden


class TestCrossProcessStability:
    def test_run_ids_identical_in_a_fresh_process(self):
        """Run IDs are stable across interpreter processes (no id()/hash
        seed dependence), which is what makes them valid cache keys."""
        grid = expand(build_study("smoke"))
        script = (
            "import json\n"
            "from repro.ablation import build_study, expand\n"
            "grid = expand(build_study('smoke'))\n"
            "print(json.dumps({l: list(i) for l, i in grid.run_ids()}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={
                "PYTHONPATH": str(HERE.parents[1] / "src"),
                "PYTHONHASHSEED": "random",
            },
        )
        fresh = json.loads(out.stdout)
        assert fresh == {label: list(ids) for label, ids in grid.run_ids()}
