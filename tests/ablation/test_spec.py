"""StudySpec construction, validation, and JSON round-trip."""

import json

import pytest

from repro.ablation.spec import (
    STUDY_FORMAT_VERSION,
    STUDY_METRICS,
    BaselineRun,
    Component,
    StudySpec,
    Variant,
    load_study_spec,
    save_study_spec,
    study_spec_from_dict,
    study_spec_to_dict,
)
from repro.experiments.runconfig import RunSettings
from repro.faults.plan import FaultPlan, SiteOutage
from repro.model.config import paper_defaults
from repro.workloads import AdmissionControl, PoissonOpen, WorkloadSpec

SMALL = RunSettings(warmup=50.0, duration=200.0, replications=2, base_seed=7)


def tiny_spec(**overrides) -> StudySpec:
    defaults = dict(
        name="tiny",
        title="Tiny",
        description="test spec",
        metric="response_time",
        config=paper_defaults(num_sites=2, mpl=3),
        baseline=BaselineRun(policy="LOCAL"),
        settings=SMALL,
        components=(
            Component(
                name="policy",
                description="who allocates",
                variants=(Variant(name="bnq", policy="BNQ"),),
            ),
        ),
    )
    defaults.update(overrides)
    return StudySpec(**defaults)


class TestValidation:
    def test_valid_spec_constructs(self):
        spec = tiny_spec()
        assert spec.component("policy").variants[0].name == "bnq"

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            tiny_spec(metric="latency")

    def test_every_declared_metric_accepted(self):
        for metric in STUDY_METRICS:
            assert tiny_spec(metric=metric).metric == metric

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError, match="component"):
            tiny_spec(components=())

    def test_duplicate_component_names_rejected(self):
        component = Component(
            name="policy",
            description="",
            variants=(Variant(name="bnq", policy="BNQ"),),
        )
        with pytest.raises(ValueError, match="duplicate"):
            tiny_spec(components=(component, component))

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Component(
                name="policy",
                description="",
                variants=(
                    Variant(name="bnq", policy="BNQ"),
                    Variant(name="bnq", policy="RANDOM"),
                ),
            )

    def test_no_override_variant_rejected(self):
        with pytest.raises(ValueError, match="identical to the baseline"):
            Variant(name="noop")

    def test_kwargs_without_kind_rejected(self):
        with pytest.raises(ValueError, match="system_kwargs"):
            Variant(name="bad", system_kwargs=(("refresh_interval", 5.0),))

    def test_unknown_system_kind_rejected(self):
        with pytest.raises(ValueError, match="system kind"):
            BaselineRun(policy="LOCAL", system_kind="quantum")

    def test_bad_config_patch_fails_at_construction(self):
        component = Component(
            name="knob",
            description="",
            variants=(
                Variant(name="typo", config_patches=(("site.mppl", 9),)),
            ),
        )
        with pytest.raises((AttributeError, ValueError, KeyError, TypeError)):
            tiny_spec(components=(component,))

    def test_unknown_component_lookup(self):
        with pytest.raises(KeyError):
            tiny_spec().component("nonexistent")


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = tiny_spec()
        assert study_spec_from_dict(study_spec_to_dict(spec)) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "tiny.json"
        save_study_spec(spec, path)
        assert load_study_spec(path) == spec
        # The file is pretty-printed with stable key order.
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text)["format_version"] == STUDY_FORMAT_VERSION

    def test_round_trip_with_faults_and_workload(self):
        spec = tiny_spec(
            components=(
                Component(
                    name="environment",
                    description="",
                    variants=(
                        Variant(
                            name="outage",
                            faults=FaultPlan(
                                site_outages=(
                                    SiteOutage(site=0, at=60.0, duration=30.0),
                                )
                            ),
                        ),
                        Variant(
                            name="open",
                            workload=WorkloadSpec(
                                arrivals=PoissonOpen(rate=0.05),
                                admission=AdmissionControl(max_pending=4),
                            ),
                        ),
                    ),
                ),
            ),
        )
        assert study_spec_from_dict(study_spec_to_dict(spec)) == spec

    def test_round_trip_with_system_kwargs(self):
        spec = tiny_spec(
            baseline=BaselineRun(
                policy="LOCAL",
                system_kind="updates",
                system_kwargs=(("update_prob", 0.1),),
            ),
            components=(
                Component(
                    name="staleness",
                    description="",
                    variants=(
                        Variant(
                            name="stale",
                            system_kind="stale",
                            system_kwargs=(("refresh_interval", 25.0),),
                        ),
                    ),
                ),
            ),
        )
        assert study_spec_from_dict(study_spec_to_dict(spec)) == spec

    def test_future_format_version_rejected(self):
        data = study_spec_to_dict(tiny_spec())
        data["format_version"] = STUDY_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format_version"):
            study_spec_from_dict(data)

    def test_json_lists_refreeze_to_tuples(self):
        spec = tiny_spec(
            components=(
                Component(
                    name="knob",
                    description="",
                    variants=(
                        Variant(
                            name="mpl",
                            config_patches=(("site.mpl", 9),),
                        ),
                    ),
                ),
            ),
        )
        # Through actual JSON text, so tuples become lists and back.
        data = json.loads(json.dumps(study_spec_to_dict(spec)))
        assert study_spec_from_dict(data) == spec
