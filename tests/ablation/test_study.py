"""Study execution and report: serial/parallel byte-identity, caching,
metric aggregation, and ranked-report determinism."""

import pytest

from repro.ablation import (
    build_study,
    expand,
    metric_delta_pct,
    rank_components,
    render_study_report,
    run_study,
    variant_effects,
)
from repro.ablation.study import metrics_from_runs
from repro.experiments.cache import ResultCache
from repro.experiments.context import StudyContext


@pytest.fixture(scope="module")
def smoke_outcome():
    """One serial, uncached run of the smoke study, shared by the module."""
    return run_study(build_study("smoke"))


class TestRunStudy:
    def test_outcome_covers_every_cell(self, smoke_outcome):
        grid = expand(build_study("smoke"))
        assert smoke_outcome.baseline.label == "baseline"
        assert [c.label for c in smoke_outcome.cells] == [
            c.label for c in grid.cells
        ]
        for cell in (smoke_outcome.baseline,) + smoke_outcome.cells:
            assert len(cell.per_replication) == len(cell.run_ids)

    def test_serial_vs_jobs2_byte_identity(self, smoke_outcome):
        """The acceptance contract, on a study with fault and open-workload
        cells: ``--jobs 2`` reproduces the serial outcome exactly."""
        parallel = run_study(
            build_study("smoke"), context=StudyContext(jobs=2)
        )
        assert parallel == smoke_outcome
        assert render_study_report(parallel) == render_study_report(
            smoke_outcome
        )

    def test_second_run_is_fully_cache_served(self, tmp_path, smoke_outcome):
        cache = ResultCache(tmp_path / "cache")
        spec = build_study("smoke")
        first = run_study(spec, context=StudyContext(cache=cache))
        misses_after_first = cache.stats.misses
        second = run_study(spec, context=StudyContext(cache=cache))
        assert cache.stats.misses == misses_after_first  # 100% hits
        assert cache.stats.hits >= len(expand(spec).all_tasks())
        assert first == second == smoke_outcome
        assert render_study_report(second) == render_study_report(
            smoke_outcome
        )

    def test_fault_cell_loses_availability(self, smoke_outcome):
        """The outage cell must actually exercise the fault path."""
        faulted = smoke_outcome.cell("faults:site-outage")
        assert faulted.metrics.availability <= 1.0
        assert smoke_outcome.baseline.metrics.availability == 1.0

    def test_open_workload_cell_reports_shed_rate(self, smoke_outcome):
        open_cell = smoke_outcome.cell("workload:open-poisson")
        assert 0.0 <= open_cell.metrics.shed_rate <= 1.0
        assert smoke_outcome.baseline.metrics.shed_rate == 0.0

    def test_unknown_cell_lookup(self, smoke_outcome):
        with pytest.raises(KeyError):
            smoke_outcome.cell("nope")


class TestMetricsFromRuns:
    def test_requires_runs(self):
        with pytest.raises(ValueError):
            metrics_from_runs([])

    def test_single_run_passthrough(self, smoke_outcome):
        run = smoke_outcome.baseline.per_replication[0]
        metrics = metrics_from_runs([run])
        assert metrics.response_time == run.mean_response_time
        assert metrics.waiting_time == run.mean_waiting_time
        assert metrics.completions == run.completions

    def test_unknown_metric_name(self, smoke_outcome):
        with pytest.raises(KeyError):
            smoke_outcome.baseline.metrics.value("latency")


class TestDeltas:
    def test_lower_is_better_uses_improvement(self):
        assert metric_delta_pct("response_time", 50.0, 100.0) == 50.0
        assert metric_delta_pct("waiting_time", 150.0, 100.0) == -50.0

    def test_availability_improves_upward(self):
        assert metric_delta_pct("availability", 1.0, 0.8) == pytest.approx(25.0)
        assert metric_delta_pct("availability", 0.6, 0.8) == pytest.approx(-25.0)

    def test_zero_baseline_guard(self):
        assert metric_delta_pct("response_time", 5.0, 0.0) == 0.0
        assert metric_delta_pct("availability", 5.0, 0.0) == 0.0

    def test_none_propagates(self):
        assert metric_delta_pct("fairness", None, 1.0) is None
        assert metric_delta_pct("fairness", 1.0, None) is None


class TestRankedReport:
    def test_every_component_ranked_once(self, smoke_outcome):
        ranked = rank_components(smoke_outcome)
        assert sorted(r.component for r in ranked) == sorted(
            c.name for c in smoke_outcome.spec.components
        )

    def test_ranking_descends_with_name_tiebreak(self, smoke_outcome):
        ranked = rank_components(smoke_outcome)
        keys = [(-r.importance, r.component) for r in ranked]
        assert keys == sorted(keys)

    def test_effects_cover_every_variant(self, smoke_outcome):
        effects = variant_effects(smoke_outcome)
        assert [e.label for e in effects] == [
            c.label for c in smoke_outcome.cells
        ]

    def test_report_is_deterministic(self, smoke_outcome):
        rerun = run_study(build_study("smoke"))
        assert render_study_report(rerun) == render_study_report(
            smoke_outcome
        )

    def test_report_contents(self, smoke_outcome):
        text = render_study_report(smoke_outcome)
        assert "Ranked component importance" in text
        assert "Per-variant effects" in text
        assert "Baseline: policy=LERT kind=standard" in text
        for component in ("allocation", "faults", "workload"):
            assert component in text

    def test_markdown_rendering_shares_cells(self, smoke_outcome):
        text = render_study_report(smoke_outcome)
        md = render_study_report(smoke_outcome, markdown=True)
        assert "| rank |" in md.replace("  ", " ")
        # Same headline numbers appear in both renderings.
        baseline_line = next(
            line for line in text.splitlines() if "Baseline metrics" in line
        )
        assert baseline_line in md
