"""Unit tests for the analytic capacity curves."""

import pytest

from repro.analysis.capacity import (
    capacity_curve,
    fluctuation_headroom,
    local_response_time,
    local_throughput,
)
from repro.analysis.capacity import _split_population
from repro.model.config import paper_defaults


class TestSplitPopulation:
    def test_even_split(self):
        assert _split_population(20, (0.5, 0.5)) == (10, 10)

    def test_rounding_preserves_total(self):
        for mpl in range(1, 30):
            split = _split_population(mpl, (0.3, 0.7))
            assert sum(split) == mpl

    def test_skewed_split(self):
        assert _split_population(10, (0.8, 0.2)) == (8, 2)

    def test_three_classes(self):
        split = _split_population(10, (1 / 3, 1 / 3, 1 / 3))
        assert sum(split) == 10
        assert max(split) - min(split) <= 1


class TestLocalResponseTime:
    def test_monotone_in_mpl(self):
        config = paper_defaults()
        values = [local_response_time(config, mpl) for mpl in (5, 10, 20, 30)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_magnitude_matches_simulation(self):
        # Simulated LOCAL RT at mpl=20, think=350 is ~45-55; the analytic
        # fixed-population model lands in the same regime.
        config = paper_defaults()
        analytic = local_response_time(config, 20)
        assert 35.0 < analytic < 75.0

    def test_minimum_is_service_demand(self):
        # At mpl=1 there is no contention: RT -> mean service demand.
        config = paper_defaults()
        rt = local_response_time(config, 1)
        # population split gives one customer of a single class; both
        # classes' demands are 21 and 40, so the value is one of them.
        assert rt == pytest.approx(21.0, rel=0.01) or rt == pytest.approx(
            40.0, rel=0.01
        )

    def test_invalid_mpl(self):
        with pytest.raises(ValueError):
            local_response_time(paper_defaults(), 0)

    def test_throughput_saturates(self):
        config = paper_defaults()
        x_small = local_throughput(config, 5)
        x_big = local_throughput(config, 60)
        x_bigger = local_throughput(config, 80)
        assert x_big > x_small
        assert (x_bigger - x_big) / x_big < 0.05


class TestCapacityCurve:
    def test_curve_and_max_mpl(self):
        config = paper_defaults()
        curve = capacity_curve(config, mpl_grid=tuple(range(5, 31, 5)))
        assert len(curve.local) == len(curve.mpl_grid)
        assert curve.max_mpl(1e9) == 30
        assert curve.max_mpl(0.0) == 0
        # Monotone: the feasible set is a prefix.
        bound = curve.local[2]
        assert curve.max_mpl(bound) == curve.mpl_grid[2]

    def test_against_paper_table10_local_column(self):
        # Paper: LOCAL sustains ~21 terminals at RT <= 60 and ~10 at <= 40.
        config = paper_defaults()
        curve = capacity_curve(config, mpl_grid=tuple(range(4, 41)))
        at60 = curve.max_mpl(60.0)
        at40 = curve.max_mpl(40.0)
        assert 14 <= at60 <= 28
        assert 5 <= at40 <= 16
        assert at40 < at60


class TestFluctuationHeadroom:
    def test_sign_and_scale(self):
        config = paper_defaults()
        # If simulation says 52 and the analytic model says ~56, headroom
        # is slightly negative; with 70 it is positive.
        low = fluctuation_headroom(config, simulated_local_response=70.0, mpl=20)
        assert -1.0 < low < 1.0

    def test_zero_simulated(self):
        assert fluctuation_headroom(paper_defaults(), 0.0, 20) == 0.0
