"""Tests for the Table 5/6 grid computation and paper agreement."""

import pytest

from repro.analysis.improvement import (
    PAPER_CPU_PAIRS,
    PAPER_LOADS,
    grid_summary,
    improvement_grid,
)
from repro.experiments.paper_data import TABLE5_WIF, TABLE6_FIF


@pytest.fixture(scope="module")
def grid():
    return improvement_grid()


class TestGridStructure:
    def test_dimensions(self, grid):
        assert len(grid) == 6
        assert all(len(row) == 12 for row in grid)

    def test_paper_loads_totals_increase(self):
        totals = [sum(sum(row) for row in load) for load in PAPER_LOADS]
        assert totals == sorted(totals)
        assert totals == [4, 4, 5, 5, 6, 8]

    def test_cells_carry_their_inputs(self, grid):
        cell = grid[0][0]
        assert cell.cpu_pair == PAPER_CPU_PAIRS[0]
        assert cell.load == PAPER_LOADS[0]
        assert cell.class_index == 0

    def test_summary_keys(self, grid):
        summary = grid_summary(grid)
        assert summary["cells"] == 72
        assert 0 <= summary["conflict_fraction"] <= 1


class TestPaperAgreement:
    """Shape-level agreement with the published Tables 5 and 6."""

    def test_wif_band(self, grid):
        wifs = [cell.wif for row in grid for cell in row]
        assert all(-0.01 <= w <= 0.60 for w in wifs), "WIF outside Table 5's band"

    def test_wif_class_asymmetry_row_05_05(self, grid):
        # Paper row 0.05/0.50: class-1 (I/O) arrivals improve, class-2
        # arrivals barely do.
        row = grid[0]
        class1 = [row[i].wif for i in range(0, 12, 2)]
        class2 = [row[i].wif for i in range(1, 12, 2)]
        assert sum(class1) > sum(class2)

    def test_wif_class_asymmetry_row_50_20(self, grid):
        # Paper row 0.50/2.00: class-1 columns are ~0, class-2 positive.
        row = grid[4]
        class1 = [row[i].wif for i in range(0, 12, 2)]
        class2 = [row[i].wif for i in range(1, 12, 2)]
        assert max(class1) < 0.05
        assert min(class2[:3]) > 0.05

    def test_wif_rises_with_cpu_ratio_for_first_rows(self, grid):
        # Paper: "an increase in the ratio of the mean CPU demands ...
        # produces an increase in the Waiting Improvement Factor" for the
        # first four mixtures (compare rows 0.05/0.5 and 0.10/2.0 at the
        # first condition).
        assert grid[3][0].wif > grid[0][0].wif

    def test_fif_significant_everywhere_on_average(self, grid):
        fifs = [cell.fif for row in grid for cell in row]
        assert sum(fifs) / len(fifs) > 0.3

    def test_fif_matches_paper_cells_closely(self, grid):
        # Most rows of Table 6 reproduce almost exactly (see EXPERIMENTS.md).
        close_rows = 0
        for pair, row in zip(PAPER_CPU_PAIRS, grid):
            measured = [cell.fif for cell in row]
            paper = TABLE6_FIF[pair]
            mad = sum(abs(a - b) for a, b in zip(measured, paper)) / len(paper)
            if mad < 0.10:
                close_rows += 1
        assert close_rows >= 4

    def test_wif_first_condition_tracks_paper(self, grid):
        # The first arrival condition matches the paper's cells well.
        for pair, row in zip(PAPER_CPU_PAIRS, grid):
            measured = row[0].wif
            paper = TABLE5_WIF[pair][0]
            assert abs(measured - paper) < 0.10, (
                f"cpu {pair}: measured {measured:.2f} vs paper {paper:.2f}"
            )

    def test_wait_and_fairness_conflict_sometimes(self, grid):
        # Paper: the two optima differed "in about half of the cases".
        summary = grid_summary(grid)
        assert 0.05 < summary["conflict_fraction"] < 0.8
