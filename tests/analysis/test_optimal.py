"""Unit tests for the optimal-allocation analysis (§3 machinery)."""

import pytest

from repro.analysis.optimal import (
    TIE_AVERAGE,
    TIE_BEST,
    TIE_FIRST,
    TIE_WORST,
    add_arrival,
    bnq_candidates,
    query_difference,
    study_arrival,
    system_fairness,
    system_waiting,
    validate_load,
)
from repro.analysis.site_network import SiteModel


@pytest.fixture
def model():
    return SiteModel(cpu_means=(0.05, 1.0), disk_time=1.0, num_disks=2)


class TestLoadMatrixHelpers:
    def test_validate_accepts(self):
        assert validate_load([[1, 2], [3, 4]]) == ((1, 2), (3, 4))

    def test_validate_rejects_ragged(self):
        with pytest.raises(ValueError):
            validate_load([[1, 2], [3]])

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_load([[1, -1]])

    def test_add_arrival(self):
        load = ((1, 0), (0, 1))
        assert add_arrival(load, 1, 0) == ((1, 0), (1, 1))

    def test_query_difference(self):
        assert query_difference(((2, 1, 0, 0), (0, 0, 1, 1))) == 1
        assert query_difference(((1, 1), (1, 1))) == 0

    def test_bnq_candidates_all_tied(self):
        load = ((1, 1, 0, 0), (0, 0, 1, 1))
        assert bnq_candidates(load) == (0, 1, 2, 3)

    def test_bnq_candidates_unique_minimum(self):
        load = ((2, 1, 0, 0), (0, 0, 1, 1))
        # totals (2,1,1,1): adding to 1, 2, or 3 keeps QD at 1; adding to 0
        # raises it to 2.
        assert bnq_candidates(load) == (1, 2, 3)


class TestSystemMeasures:
    def test_system_waiting_zero_for_singletons(self, model):
        # One query per site: nobody ever queues in steady state.
        load = ((1, 1, 0, 0), (0, 0, 1, 1))
        assert system_waiting(model, load) == pytest.approx(0.0, abs=1e-9)

    def test_system_waiting_positive_under_contention(self, model):
        load = ((2, 0, 0, 0), (0, 0, 0, 0))
        assert system_waiting(model, load) > 0

    def test_system_fairness_nonnegative(self, model):
        load = ((2, 1, 0, 0), (0, 0, 1, 1))
        assert system_fairness(model, load) >= 0

    def test_system_fairness_zero_for_symmetric_classes(self):
        symmetric = SiteModel(cpu_means=(0.5, 0.5), disk_time=1.0, num_disks=2)
        load = ((1, 1), (1, 1))
        assert system_fairness(symmetric, load) == pytest.approx(0.0, abs=1e-9)

    def test_fairness_requires_two_classes(self):
        three = SiteModel(cpu_means=(0.1, 0.5, 1.0))
        with pytest.raises(ValueError):
            system_fairness(three, ((1,), (1,), (1,)))


class TestStudyArrival:
    def test_wif_nonnegative_and_below_one(self, model):
        study = study_arrival(model, ((1, 1, 0, 0), (0, 0, 1, 1)), 0)
        assert 0.0 <= study.wif < 1.0

    def test_opt_is_minimum(self, model):
        study = study_arrival(model, ((2, 1, 1, 0), (0, 0, 0, 1)), 0)
        assert study.waiting_opt == min(study.waiting)
        assert study.fairness_opt == min(study.fairness)

    def test_bnq_average_over_ties(self, model):
        study = study_arrival(model, ((1, 1, 0, 0), (0, 0, 1, 1)), 0)
        assert study.bnq_sites == (0, 1, 2, 3)
        assert study.waiting_bnq == pytest.approx(sum(study.waiting) / 4)

    def test_tie_rules_ordering(self, model):
        load = ((1, 1, 0, 0), (0, 0, 1, 1))
        best = study_arrival(model, load, 0, tie_break=TIE_BEST)
        average = study_arrival(model, load, 0, tie_break=TIE_AVERAGE)
        worst = study_arrival(model, load, 0, tie_break=TIE_WORST)
        assert best.waiting_bnq <= average.waiting_bnq <= worst.waiting_bnq
        assert best.wif <= average.wif <= worst.wif

    def test_tie_first_uses_lowest_index(self, model):
        load = ((1, 1, 0, 0), (0, 0, 1, 1))
        first = study_arrival(model, load, 0, tie_break=TIE_FIRST)
        assert first.waiting_bnq == first.waiting[0]

    def test_unique_minimum_no_tie_effect(self, model):
        load = ((2, 2, 2, 0), (1, 1, 1, 0))
        for rule in (TIE_AVERAGE, TIE_FIRST, TIE_BEST, TIE_WORST):
            study = study_arrival(model, load, 0, tie_break=rule)
            assert study.bnq_sites == (3,)
            assert study.waiting_bnq == study.waiting[3]

    def test_pairing_io_with_cpu_is_optimal(self, model):
        # An I/O arrival prefers a site whose resident query is CPU-bound.
        study = study_arrival(model, ((1, 1, 0, 0), (0, 0, 1, 1)), 0)
        assert study.opt_wait_site in (2, 3)

    def test_invalid_class_index(self, model):
        with pytest.raises(ValueError):
            study_arrival(model, ((1, 0), (0, 1)), 5)

    def test_class_count_mismatch(self, model):
        with pytest.raises(ValueError):
            study_arrival(model, ((1, 0),), 0)

    def test_invalid_tie_rule(self, model):
        with pytest.raises(ValueError):
            study_arrival(model, ((1, 0), (0, 1)), 0, tie_break="coin-flip")

    def test_conflicting_goals_flag(self, model):
        study = study_arrival(model, ((1, 1, 0, 0), (0, 0, 1, 1)), 0)
        assert study.conflicting_goals == (
            study.opt_wait_site != study.opt_fair_site
        )
