"""Unit tests for the per-site MVA networks of the §3 study."""

import pytest

from repro.analysis.site_network import (
    SiteModel,
    normalized_waiting_per_cycle,
    solve_site,
    waiting_per_cycle,
)


class TestSiteModel:
    def test_service_demand(self):
        model = SiteModel(cpu_means=(0.05, 1.0), disk_time=1.0)
        assert model.service_demand(0) == pytest.approx(1.05)
        assert model.service_demand(1) == pytest.approx(2.0)

    def test_per_disk_network_structure(self):
        model = SiteModel(cpu_means=(0.05, 1.0), disk_time=1.0, num_disks=2)
        network = model.network()
        names = [s.name for s in network.stations]
        assert names == ["disk0", "disk1", "cpu"]
        # Per-disk demand is disk_time / num_disks (visit ratio 1/2).
        assert network.stations[0].demands == (0.5, 0.5)

    def test_shared_network_structure(self):
        model = SiteModel(
            cpu_means=(0.05, 1.0), disk_time=1.0, num_disks=2,
            disk_organization="shared",
        )
        network = model.network()
        assert [s.name for s in network.stations] == ["disk", "cpu"]
        assert network.stations[0].servers == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteModel(cpu_means=())
        with pytest.raises(ValueError):
            SiteModel(cpu_means=(0.0,))
        with pytest.raises(ValueError):
            SiteModel(cpu_means=(0.5,), disk_time=0.0)
        with pytest.raises(ValueError):
            SiteModel(cpu_means=(0.5,), num_disks=0)
        with pytest.raises(ValueError):
            SiteModel(cpu_means=(0.5,), disk_organization="striped")


class TestWaitingPerCycle:
    def test_lone_query_never_waits(self):
        model = SiteModel(cpu_means=(0.05, 1.0))
        assert waiting_per_cycle(model, (1, 0), 0) == pytest.approx(0.0, abs=1e-12)

    def test_absent_class_waits_zero(self):
        model = SiteModel(cpu_means=(0.05, 1.0))
        assert waiting_per_cycle(model, (2, 0), 1) == 0.0

    def test_two_io_queries_collide_on_disks(self):
        # The per-disk organization produces nonzero waiting for two
        # I/O-bound queries even though there are two disks — random
        # routing collides them half the time.  (This is the modeling
        # choice that makes Table 5's class-1 columns nonzero.)
        model = SiteModel(cpu_means=(0.05, 1.0))
        assert waiting_per_cycle(model, (2, 0), 0) > 0.05

    def test_shared_queue_waits_less(self):
        per_disk = SiteModel(cpu_means=(0.05, 1.0))
        shared = SiteModel(cpu_means=(0.05, 1.0), disk_organization="shared")
        assert waiting_per_cycle(shared, (2, 0), 0) < waiting_per_cycle(
            per_disk, (2, 0), 0
        )

    def test_mixed_pair_interferes_less_than_same_pair(self):
        model = SiteModel(cpu_means=(0.05, 1.0))
        same = waiting_per_cycle(model, (2, 0), 0)
        mixed = waiting_per_cycle(model, (1, 1), 0)
        assert mixed < same

    def test_normalized_waiting(self):
        model = SiteModel(cpu_means=(0.05, 1.0))
        wait = waiting_per_cycle(model, (2, 1), 0)
        assert normalized_waiting_per_cycle(model, (2, 1), 0) == pytest.approx(
            wait / 1.05
        )

    def test_solver_cache_returns_identical_solution(self):
        model = SiteModel(cpu_means=(0.05, 1.0))
        assert solve_site(model, (2, 1)) is solve_site(model, (2, 1))
