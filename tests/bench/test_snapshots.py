"""The committed ``BENCH_*.json`` snapshots and the compare gate.

These are pure unit tests — no benchmark actually runs.  The committed
snapshots must stay schema-valid (the perf CI job loads them on every
push), and ``compare_reports`` must match cases on ``(name, scale)`` so
a smoke-scale run never gates against full-scale recorded rates.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.core import (
    CaseResult,
    compare_reports,
    load_payload,
    report_from_payload,
)
from repro.bench.schema import BenchSchemaError, validate_bench_payload

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
PERF_DIR = REPO_ROOT / "benchmarks" / "perf"
SNAPSHOTS = sorted(PERF_DIR.glob("BENCH_*.json"))


def _case_dict(name: str, scale: str, rate: float) -> dict:
    return {
        "name": name,
        "kind": "stress",
        "scale": scale,
        "description": "synthetic",
        "events": 1000,
        "wall_s": round(1000 / rate, 6),
        "events_per_sec": rate,
        "peak_rss_kb": 1,
        "repeats": 1,
    }


def _payload(cases: list) -> dict:
    return {
        "format": 1,
        "bench": "BENCH_6",
        "kernel": "synthetic",
        "python": "3.x",
        "platform": "test",
        "cases": cases,
    }


def _report(cases: list) -> "object":
    return report_from_payload(_payload(cases))


class TestCommittedSnapshots:
    def test_snapshots_exist(self):
        names = [path.name for path in SNAPSHOTS]
        assert "BENCH_6.json" in names
        assert "BENCH_6_smoke.json" in names

    @pytest.mark.parametrize("path", SNAPSHOTS, ids=lambda p: p.name)
    def test_committed_snapshot_is_schema_valid(self, path):
        load_payload(path)  # validates on read

    def test_full_snapshot_records_required_speedup(self):
        payload = load_payload(PERF_DIR / "BENCH_6.json")
        speedups = payload["speedup_vs_baseline"]
        assert speedups, "full snapshot must embed the seed baseline"
        # The acceptance bar for the overhaul: >= 1.5x on the stress
        # config, measured by the same harness against both kernels.
        assert speedups["stress_mix"] >= 1.5
        assert all(ratio > 1.0 for ratio in speedups.values())

    def test_smoke_snapshot_covers_smoke_scale_of_every_case(self):
        full = load_payload(PERF_DIR / "BENCH_6.json")
        smoke = load_payload(PERF_DIR / "BENCH_6_smoke.json")
        assert {c["name"] for c in smoke["cases"]} == {
            c["name"] for c in full["cases"]
        }
        assert all(c["scale"] == "smoke" for c in smoke["cases"])
        assert all(c["scale"] == "full" for c in full["cases"])


class TestSchemaValidation:
    def test_rejects_unknown_case_field(self):
        case = _case_dict("a", "full", 100.0)
        case["surprise"] = True
        with pytest.raises(BenchSchemaError):
            validate_bench_payload(_payload([case]))

    def test_rejects_bad_scale(self):
        case = _case_dict("a", "full", 100.0)
        case["scale"] = "huge"
        with pytest.raises(BenchSchemaError):
            validate_bench_payload(_payload([case]))

    def test_rejects_format_mismatch(self):
        payload = _payload([_case_dict("a", "full", 100.0)])
        payload["format"] = 999
        with pytest.raises(BenchSchemaError):
            validate_bench_payload(payload)


class TestCompareGate:
    def test_healthy_within_tolerance(self):
        current = _report([_case_dict("a", "smoke", 90.0)])
        reference = _payload([_case_dict("a", "smoke", 100.0)])
        assert compare_reports(current, reference, max_regression=0.15) == []

    def test_flags_regression_beyond_tolerance(self):
        current = _report([_case_dict("a", "smoke", 80.0)])
        reference = _payload([_case_dict("a", "smoke", 100.0)])
        regressions = compare_reports(current, reference, max_regression=0.15)
        assert [r.name for r in regressions] == ["a"]
        assert regressions[0].current == pytest.approx(80.0)
        assert regressions[0].reference == pytest.approx(100.0)

    def test_never_compares_across_scales(self):
        # A smoke run is slower per event than the full-scale recording
        # (fixed overhead amortizes worse); it must match nothing rather
        # than report a phantom regression.
        current = _report([_case_dict("a", "smoke", 50.0)])
        reference = _payload([_case_dict("a", "full", 100.0)])
        assert compare_reports(current, reference, max_regression=0.15) == []

    def test_cases_present_on_one_side_only_are_ignored(self):
        current = _report([_case_dict("new_case", "smoke", 10.0)])
        reference = _payload([_case_dict("old_case", "smoke", 100.0)])
        assert compare_reports(current, reference, max_regression=0.15) == []

    def test_events_per_sec_derived_from_best_wall(self):
        result = CaseResult(
            name="a",
            kind="stress",
            scale="full",
            description="",
            events=2000,
            wall_s=0.5,
            peak_rss_kb=1,
            repeats=3,
        )
        assert result.events_per_sec == pytest.approx(4000.0)

    def test_committed_smoke_snapshot_gates_itself(self):
        payload = load_payload(PERF_DIR / "BENCH_6_smoke.json")
        current = report_from_payload(payload)
        assert compare_reports(current, payload, max_regression=0.15) == []
