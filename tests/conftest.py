"""Shared fixtures for the test suite."""

import pytest

from repro.model.config import (
    NetworkSpec,
    QueryClassSpec,
    SiteSpec,
    SystemConfig,
    paper_defaults,
)


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A very small system for fast end-to-end tests."""
    return SystemConfig(
        num_sites=3,
        site=SiteSpec(num_disks=2, disk_time=1.0, disk_time_dev=0.2, mpl=4, think_time=50.0),
        classes=(
            QueryClassSpec("io", page_cpu_time=0.05, num_reads=5.0),
            QueryClassSpec("cpu", page_cpu_time=1.0, num_reads=5.0),
        ),
        class_probs=(0.5, 0.5),
        network=NetworkSpec(msg_length=1.0),
    )


@pytest.fixture
def default_config() -> SystemConfig:
    """The paper's Table 7 defaults."""
    return paper_defaults()
