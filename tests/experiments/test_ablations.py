"""Smoke tests for the ablation experiment modules (tiny scale)."""

import pytest

from repro.experiments import ablations
from repro.experiments.runconfig import RunSettings

TINY = RunSettings(warmup=300.0, duration=1200.0, replications=1, base_seed=55)


class TestStaleInfoSweep:
    def test_sweep_structure(self):
        result = ablations.stale_info_sweep(TINY, intervals=(0.0, 200.0))
        assert set(result.waits) == {0.0, 200.0}
        assert result.w_local > 0
        text = ablations.format_stale_info(result)
        assert "always current" in text

    def test_collapse_interval_semantics(self):
        result = ablations.stale_info_sweep(TINY, intervals=(0.0, 400.0))
        collapse = result.collapse_interval()
        if collapse != float("inf"):
            assert result.waits[collapse] > result.w_local


class TestDiskOrganization:
    def test_study_structure(self):
        result = ablations.disk_organization_study(TINY, policies=("LOCAL",))
        assert ("per_disk", "LOCAL") in result.waits
        assert ("shared", "LOCAL") in result.waits
        text = ablations.format_disk_organization(result)
        assert "per-disk" in text

    def test_shared_not_materially_worse(self):
        result = ablations.disk_organization_study(TINY, policies=("LOCAL",))
        assert result.shared_advantage("LOCAL") > -10.0


class TestUpdateFraction:
    def test_sweep_structure(self):
        result = ablations.update_fraction_sweep(TINY, fractions=(0.0, 0.3))
        assert set(result.rows) == {0.0, 0.3}
        assert result.subnet[0.3] > result.subnet[0.0]
        text = ablations.format_update_fraction(result)
        assert "update %" in text

    def test_lert_still_wins_under_updates(self):
        result = ablations.update_fraction_sweep(TINY, fractions=(0.2,))
        assert result.lert_improvement(0.2) > 0


class TestHeterogeneity:
    def test_study_structure(self):
        result = ablations.heterogeneity_study(
            TINY, speed_factors=(0.5, 1.0, 2.0)
        )
        assert set(result.response_times) == {"LOCAL", "BNQ", "LERT", "LERT-HET"}
        text = ablations.format_heterogeneity(result)
        assert "LERT-HET" in text

    def test_informed_allocation_wins_on_mixed_fleet(self):
        result = ablations.heterogeneity_study(
            TINY, speed_factors=(0.5, 0.5, 1.0, 2.0, 2.0)
        )
        assert result.informed_advantage() > 0
