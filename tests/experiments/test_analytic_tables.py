"""Tests for the analytic table experiments (Tables 5 and 6)."""

from repro.experiments import table5, table6
from repro.experiments.paper_data import TABLE5_WIF, TABLE6_FIF
from repro.analysis.improvement import PAPER_CPU_PAIRS


class TestTable5:
    def test_runs_and_formats(self):
        result = table5.run_experiment()
        text = table5.format_table(result)
        assert "Table 5" in text
        assert "repro" in text and "paper" in text

    def test_rows_align_with_paper_data(self):
        result = table5.run_experiment()
        for pair in PAPER_CPU_PAIRS:
            assert len(result.measured_row(pair)) == 12
            assert result.paper_row(pair) == list(TABLE5_WIF[pair])


class TestTable6:
    def test_runs_and_formats(self):
        result = table6.run_experiment()
        text = table6.format_table(result)
        assert "Table 6" in text
        assert "MAD" in text

    def test_mad_reported_per_row(self):
        result = table6.run_experiment()
        mads = [result.mean_absolute_deviation(pair) for pair in PAPER_CPU_PAIRS]
        assert all(m >= 0 for m in mads)
        # At least four of six rows reproduce the paper almost exactly.
        assert sum(1 for m in mads if m < 0.10) >= 4

    def test_paper_rows_are_authentic(self):
        result = table6.run_experiment()
        for pair in PAPER_CPU_PAIRS:
            assert result.paper_row(pair) == list(TABLE6_FIF[pair])
