"""Tests for the content-addressed result cache.

Covers the ISSUE's cache contract: hits must avoid simulation entirely,
any single-field change to the run inputs must change the key, corrupt or
version-mismatched entries must degrade to misses (never crash) and be
rewritten, and writes must be atomic under concurrency.  Property tests
(hypothesis) pin down the content-addressing invariants: keys are
insensitive to dict insertion order and to no-op dataclass copies.
"""

import dataclasses
import json
import shutil
import threading

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.experiments.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ResultCache,
    cache_key,
    canonical_json,
    default_cache_dir,
)
from repro.experiments.common import simulate
from repro.experiments.parallel import replication_tasks, run_tasks
from repro.experiments.runconfig import RunSettings
from repro.model.config import paper_defaults
from repro.model.metrics import SystemResults
from repro.sim.stats import IntervalEstimate

#: Short but real run settings for end-to-end cache tests.
SMALL = RunSettings(warmup=150.0, duration=600.0, replications=1, base_seed=42)
SMALL2 = RunSettings(warmup=150.0, duration=600.0, replications=2, base_seed=42)

#: A syntactically valid 64-hex-char key for direct store tests.
KEY = "ab" + "0" * 62


def fake_results(policy: str = "LOCAL", with_ci: bool = True) -> SystemResults:
    """A fully populated SystemResults without running a simulation."""
    ci = (
        IntervalEstimate(mean=1.5, half_width=0.25, confidence=0.9, batches=20)
        if with_ci
        else None
    )
    return SystemResults(
        policy=policy,
        mean_waiting_time=1.5,
        mean_response_time=12.5,
        fairness=0.2,
        waiting_by_class=(1.0, 2.0),
        normalized_by_class=(0.5, 1.5),
        subnet_utilization=0.3,
        cpu_utilization=0.6,
        disk_utilization=0.4,
        completions=1234,
        remote_fraction=0.25,
        measured_time=2000.0,
        waiting_ci=ci,
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------


def _key(config=None, policy="LERT", **overrides):
    base = dict(
        seed=7, warmup=100.0, duration=500.0, system_kind="standard",
        system_kwargs=(),
    )
    base.update(overrides)
    return cache_key(config if config is not None else paper_defaults(), policy, **base)


class TestCacheKey:
    def test_is_hex_digest(self):
        key = _key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_deterministic(self):
        assert _key() == _key()

    def test_equal_configs_equal_keys(self):
        assert _key(paper_defaults()) == _key(paper_defaults())

    @pytest.mark.parametrize(
        "change",
        [
            {"policy": "BNQ"},
            {"seed": 8},
            {"warmup": 101.0},
            {"duration": 501.0},
            {"system_kind": "stale"},
            {"system_kwargs": (("refresh_interval", 5.0),)},
        ],
        ids=lambda change: next(iter(change)),
    )
    def test_any_single_field_change_changes_key(self, change):
        assert _key(**change) != _key()

    def test_config_change_changes_key(self):
        assert _key(paper_defaults(num_sites=4)) != _key(paper_defaults())

    def test_nested_config_change_changes_key(self):
        cfg = paper_defaults()
        bumped = dataclasses.replace(
            cfg, site=dataclasses.replace(cfg.site, mpl=cfg.site.mpl + 1)
        )
        assert _key(bumped) != _key(cfg)

    def test_system_kwargs_order_irrelevant(self):
        forward = _key(system_kwargs=(("a", 1), ("b", 2.0)))
        backward = _key(system_kwargs=(("b", 2.0), ("a", 1)))
        assert forward == backward

    def test_task_key_matches_cache_key(self, tiny_config):
        task = replication_tasks(tiny_config, "BNQ", SMALL)[0]
        assert task.key() == cache_key(
            tiny_config,
            "BNQ",
            seed=SMALL.seed_for(0),
            warmup=SMALL.warmup,
            duration=SMALL.duration,
        )


class TestCacheKeyProperties:
    """Hypothesis pins: content addressing is structural, not incidental."""

    @given(
        mpl=st.integers(1, 50),
        think=st.floats(1.0, 500.0, allow_nan=False),
        seed=st.integers(0, 2**31),
    )
    @hyp_settings(max_examples=25, deadline=None)
    def test_noop_replace_preserves_key(self, mpl, think, seed):
        cfg = paper_defaults(mpl=mpl, think_time=think)
        clone = dataclasses.replace(cfg)
        assert cfg == clone
        assert _key(cfg, seed=seed) == _key(clone, seed=seed)

    @given(
        payload=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=8),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        )
    )
    @hyp_settings(max_examples=50, deadline=None)
    def test_canonical_json_ignores_insertion_order(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert canonical_json(payload) == canonical_json(reordered)
        # And round-trips: the canonical form parses back to the payload.
        assert json.loads(canonical_json(payload)) == payload


# ----------------------------------------------------------------------
# Store behaviour
# ----------------------------------------------------------------------


class TestResultCacheStore:
    def test_round_trip(self, cache):
        result = fake_results()
        cache.put(KEY, result)
        assert cache.get(KEY) == result
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_round_trip_without_ci(self, cache):
        result = fake_results(with_ci=False)
        cache.put(KEY, result)
        got = cache.get(KEY)
        assert got == result
        assert got.waiting_ci is None

    def test_missing_key_is_miss(self, cache):
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.errors == 0

    def test_contains(self, cache):
        assert KEY not in cache
        cache.put(KEY, fake_results())
        assert KEY in cache

    def test_two_level_sharding(self, cache):
        path = cache.path_for(KEY)
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"

    def test_no_temp_files_left_behind(self, cache):
        cache.put(KEY, fake_results())
        entries = sorted(p.name for p in cache.path_for(KEY).parent.iterdir())
        assert entries == [f"{KEY}.json"]

    def test_repr_and_stats_str(self, cache):
        assert str(cache.root) in repr(cache)
        assert str(CacheStats(1, 2, 3, 4)) == "1 hits, 2 misses, 3 writes, 4 errors"


class TestCacheRobustness:
    """Corrupt / stale entries are misses, never crashes, and get rewritten."""

    def test_corrupt_entry_is_miss_then_rewritten(self, cache):
        result = fake_results()
        cache.put(KEY, result)
        cache.path_for(KEY).write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        cache.put(KEY, result)
        assert cache.get(KEY) == result

    def test_truncated_entry_is_miss(self, cache):
        cache.put(KEY, fake_results())
        path = cache.path_for(KEY)
        path.write_text(path.read_text(encoding="utf-8")[:40], encoding="utf-8")
        assert cache.get(KEY) is None

    def test_non_object_entry_is_miss(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[]", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1

    def test_version_mismatch_is_miss(self, cache, tmp_path):
        cache.put(KEY, fake_results())
        future = ResultCache(cache.root, version=cache.version + 1)
        assert future.get(KEY) is None
        assert future.stats.errors == 1
        # Old-versioned readers still see their own entry.
        assert cache.get(KEY) is not None

    def test_key_mismatch_is_miss(self, cache):
        """An entry copied to the wrong filename is rejected."""
        other = "cd" + "1" * 62
        cache.put(KEY, fake_results())
        target = cache.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(cache.path_for(KEY), target)
        assert cache.get(other) is None
        assert cache.stats.errors == 1

    def test_malformed_result_payload_is_miss(self, cache):
        cache.put(KEY, fake_results())
        path = cache.path_for(KEY)
        data = json.loads(path.read_text(encoding="utf-8"))
        del data["result"]["policy"]
        path.write_text(json.dumps(data), encoding="utf-8")
        assert cache.get(KEY) is None


class TestCacheAtomicity:
    def test_concurrent_writers_and_readers(self, cache):
        """Hammering one key from several threads never corrupts it."""
        result = fake_results()
        cache.put(KEY, result)  # ensure readers always find something
        bad = []

        def hammer():
            for _ in range(25):
                cache.put(KEY, result)
                got = cache.get(KEY)
                if got != result:
                    bad.append(got)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert bad == []
        leftovers = [
            p for p in cache.path_for(KEY).parent.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# Integration with the execution backend
# ----------------------------------------------------------------------


class TestCacheAvoidsSimulation:
    def test_hit_skips_system_run(self, tiny_config, cache, monkeypatch):
        """A cache hit must answer without constructing/running a system."""
        from repro.model.system import DistributedDatabase

        calls = {"n": 0}
        original = DistributedDatabase.run

        def counting_run(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(DistributedDatabase, "run", counting_run)
        task = replication_tasks(tiny_config, "LOCAL", SMALL)[0]
        first = run_tasks([task], cache=cache)
        assert calls["n"] == 1
        assert cache.stats.writes == 1
        second = run_tasks([task], cache=cache)
        assert calls["n"] == 1  # no new simulation
        assert cache.stats.hits == 1
        assert first == second

    def test_simulate_cached_equals_uncached(self, tiny_config, cache):
        fresh = simulate(tiny_config, "BNQ", SMALL2)
        warmed = simulate(tiny_config, "BNQ", SMALL2, cache=cache)
        assert cache.stats == CacheStats(hits=0, misses=2, writes=2, errors=0)
        cached = simulate(tiny_config, "BNQ", SMALL2, cache=cache)
        assert cache.stats.hits == 2
        assert fresh == warmed == cached

    def test_duplicate_tasks_write_once(self, tiny_config, cache):
        task = replication_tasks(tiny_config, "LOCAL", SMALL)[0]
        run_tasks([task, task], cache=cache)
        assert cache.stats.writes == 1


# ----------------------------------------------------------------------
# Default directory
# ----------------------------------------------------------------------


class TestDefaultCacheDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        path = default_cache_dir()
        assert path.parts[-3:] == (".cache", "repro", "results")
