"""Tests for the repro-experiments command-line interface."""

import pytest

import repro.experiments.cli as cli
from repro.experiments.cache import ResultCache
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table5"])
        assert args.experiment == "table5"
        assert args.scale == "standard"

    def test_scale_option(self):
        parser = build_parser()
        args = parser.parse_args(["table8", "--scale", "quick"])
        assert args.scale == "quick"

    def test_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table99"])

    def test_rejects_unknown_scale(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table5", "--scale", "cosmic"])

    def test_report_choice_and_out_flag(self):
        parser = build_parser()
        args = parser.parse_args(["report", "--out", "x.md"])
        assert args.experiment == "report"
        assert args.out == "x.md"

    def test_ablations_and_validation_registered(self):
        parser = build_parser()
        for name in (
            "ablation-stale",
            "ablation-disk",
            "ablation-updates",
            "ablation-heterogeneous",
            "ablation-subnet",
            "validation",
        ):
            assert parser.parse_args([name]).experiment == name


class TestJobsAndCacheFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["table8"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_parsing(self):
        args = build_parser().parse_args(
            ["table9", "--jobs", "4", "--cache-dir", "/tmp/rc", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/rc"
        assert args.no_cache is True

    def test_main_threads_jobs_and_cache(self, monkeypatch, tmp_path, capsys):
        seen = {}

        def fake_runner(settings, *, jobs=1, cache=None):
            seen["jobs"] = jobs
            seen["cache"] = cache
            return ""

        monkeypatch.setitem(cli._SIMULATED, "table8", fake_runner)
        cache_dir = tmp_path / "rc"
        code = main(["table8", "--jobs", "3", "--cache-dir", str(cache_dir)])
        assert code == 0
        assert seen["jobs"] == 3
        assert isinstance(seen["cache"], ResultCache)
        assert seen["cache"].root == cache_dir
        # Timing + cache stats go to stderr so table text stays clean.
        captured = capsys.readouterr()
        assert "wall-clock" in captured.err
        assert "cache:" in captured.err
        assert "wall-clock" not in captured.out

    def test_no_cache_passes_none(self, monkeypatch):
        seen = {}

        def fake_runner(settings, *, jobs=1, cache=None):
            seen["cache"] = cache
            return ""

        monkeypatch.setitem(cli._SIMULATED, "table8", fake_runner)
        assert main(["table8", "--no-cache"]) == 0
        assert seen["cache"] is None

    def test_analytic_experiment_never_builds_cache(self, tmp_path):
        cache_dir = tmp_path / "never-created"
        assert main(["table5", "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()


class TestMain:
    def test_analytic_experiment_end_to_end(self, capsys):
        exit_code = main(["table5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 5" in output
        assert "repro" in output

    def test_table6_end_to_end(self, capsys):
        assert main(["table6"]) == 0
        assert "Table 6" in capsys.readouterr().out
