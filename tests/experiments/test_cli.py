"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table5"])
        assert args.experiment == "table5"
        assert args.scale == "standard"

    def test_scale_option(self):
        parser = build_parser()
        args = parser.parse_args(["table8", "--scale", "quick"])
        assert args.scale == "quick"

    def test_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table99"])

    def test_rejects_unknown_scale(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table5", "--scale", "cosmic"])

    def test_report_choice_and_out_flag(self):
        parser = build_parser()
        args = parser.parse_args(["report", "--out", "x.md"])
        assert args.experiment == "report"
        assert args.out == "x.md"

    def test_ablations_and_validation_registered(self):
        parser = build_parser()
        for name in (
            "ablation-stale",
            "ablation-disk",
            "ablation-updates",
            "ablation-heterogeneous",
            "ablation-subnet",
            "validation",
        ):
            assert parser.parse_args([name]).experiment == name


class TestMain:
    def test_analytic_experiment_end_to_end(self, capsys):
        exit_code = main(["table5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 5" in output
        assert "repro" in output

    def test_table6_end_to_end(self, capsys):
        assert main(["table6"]) == 0
        assert "Table 6" in capsys.readouterr().out
