"""Tests for the repro-experiments command-line interface."""

import json

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.cli import build_parser, main
from repro.experiments.registry import experiment_names


class TestParser:
    def test_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table5"])
        assert args.command == "table5"
        assert args.scale == "standard"

    def test_every_registered_experiment_is_a_subcommand(self):
        parser = build_parser()
        for name in experiment_names():
            assert parser.parse_args([name]).command == name

    def test_scale_option(self):
        parser = build_parser()
        args = parser.parse_args(["table8", "--scale", "quick"])
        assert args.scale == "quick"

    def test_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table99"])

    def test_rejects_unknown_scale(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table5", "--scale", "cosmic"])

    def test_report_choice_and_out_flag(self):
        parser = build_parser()
        args = parser.parse_args(["report", "--out", "x.md"])
        assert args.command == "report"
        assert args.out == "x.md"

    def test_ablations_and_validation_registered(self):
        parser = build_parser()
        for name in (
            "ablation-stale",
            "ablation-disk",
            "ablation-updates",
            "ablation-heterogeneous",
            "ablation-subnet",
            "validation",
        ):
            assert parser.parse_args([name]).command == name

    def test_study_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["study", "studies/smoke.json"])
        assert args.command == "study"
        assert args.spec == "studies/smoke.json"
        assert args.markdown is False
        assert parser.parse_args(
            ["study", "s.json", "--markdown"]
        ).markdown is True

    def test_study_requires_spec_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study"])

    def test_list_subcommand(self):
        assert build_parser().parse_args(["list"]).command == "list"


class TestJobsAndCacheFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["table8"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_parsing(self):
        args = build_parser().parse_args(
            ["table9", "--jobs", "4", "--cache-dir", "/tmp/rc", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/rc"
        assert args.no_cache is True

    @staticmethod
    def _stub_experiment(monkeypatch, name, fake_runner):
        import dataclasses

        import repro.experiments.registry as registry

        stub = dataclasses.replace(
            registry.get_experiment(name), runner=fake_runner
        )
        monkeypatch.setitem(registry._REGISTRY, name, stub)

    def test_main_threads_jobs_and_cache(self, monkeypatch, tmp_path, capsys):
        seen = {}

        def fake_runner(settings, context):
            seen["jobs"] = context.jobs
            seen["cache"] = context.cache
            return ""

        self._stub_experiment(monkeypatch, "table8", fake_runner)
        cache_dir = tmp_path / "rc"
        code = main(["table8", "--jobs", "3", "--cache-dir", str(cache_dir)])
        assert code == 0
        assert seen["jobs"] == 3
        assert isinstance(seen["cache"], ResultCache)
        assert seen["cache"].root == cache_dir
        # Timing + cache stats go to stderr so table text stays clean.
        captured = capsys.readouterr()
        assert "wall-clock" in captured.err
        assert "cache:" in captured.err
        assert "wall-clock" not in captured.out

    def test_no_cache_passes_none(self, monkeypatch):
        seen = {}

        def fake_runner(settings, context):
            seen["cache"] = context.cache
            return ""

        self._stub_experiment(monkeypatch, "table8", fake_runner)
        assert main(["table8", "--no-cache"]) == 0
        assert seen["cache"] is None

    def test_analytic_experiment_never_builds_cache(self, tmp_path):
        cache_dir = tmp_path / "never-created"
        assert main(["table5", "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()


class TestMain:
    def test_analytic_experiment_end_to_end(self, capsys):
        exit_code = main(["table5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 5" in output
        assert "repro" in output

    def test_table6_end_to_end(self, capsys):
        assert main(["table6"]) == 0
        assert "Table 6" in capsys.readouterr().out

    def test_list_end_to_end(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "study-core" in out
        assert "smoke" in out

    def test_study_end_to_end(self, tmp_path, capsys):
        from repro.ablation import build_study, save_study_spec

        spec = build_study("smoke")
        path = tmp_path / "smoke.json"
        save_study_spec(spec, path)
        assert main(["study", str(path), "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "Ranked component importance" in captured.out
        assert "wall-clock" in captured.err

    def test_study_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}), encoding="utf-8")
        with pytest.raises(Exception):
            main(["study", str(path), "--no-cache"])
