"""Unit tests for the shared experiment machinery."""

import math

import pytest

from repro.experiments.common import (
    AveragedResults,
    TextTable,
    improvement_pct,
    simulate,
)
from repro.experiments.runconfig import RunSettings


class TestImprovementPct:
    def test_positive_improvement(self):
        assert improvement_pct(new=8.0, base=10.0) == pytest.approx(20.0)

    def test_negative_improvement(self):
        assert improvement_pct(new=12.0, base=10.0) == pytest.approx(-20.0)

    def test_zero_base(self):
        assert improvement_pct(5.0, 0.0) == 0.0


class TestTextTable:
    def test_render_contains_rows(self):
        table = TextTable(["a", "b"], title="demo")
        table.add_row("x", 1.5)
        text = table.render()
        assert "demo" in text
        assert "x" in text
        assert "1.50" in text

    def test_row_width_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_alignment_uniform(self):
        table = TextTable(["col"])
        table.add_row("xxxxxxxxxx")
        table.add_row("y")
        lines = table.render().splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestSimulate:
    def test_replications_are_averaged(self, tiny_config):
        settings = RunSettings(warmup=100.0, duration=400.0, replications=2, base_seed=1)
        result = simulate(tiny_config, "BNQ", settings)
        assert len(result.per_replication) == 2
        expected = sum(
            r.mean_waiting_time for r in result.per_replication
        ) / 2
        assert result.mean_waiting_time == pytest.approx(expected)

    def test_common_random_numbers_across_policies(self, tiny_config):
        settings = RunSettings(warmup=100.0, duration=400.0, replications=1, base_seed=9)
        # Identical seeds mean both policies face the same query stream;
        # completions differ only through queueing, not workload.
        a = simulate(tiny_config, "LOCAL", settings)
        b = simulate(tiny_config, "LOCAL", settings)
        assert a.mean_waiting_time == b.mean_waiting_time

    def test_rho_ratio(self, tiny_config):
        settings = RunSettings(warmup=100.0, duration=400.0, replications=1)
        result = simulate(tiny_config, "LOCAL", settings)
        assert result.rho_ratio == pytest.approx(
            result.disk_utilization / result.cpu_utilization
        )


def _averaged_with_utilizations(cpu: float, disk: float) -> AveragedResults:
    return AveragedResults(
        policy="LOCAL",
        mean_waiting_time=0.0,
        mean_response_time=0.0,
        fairness=None,
        subnet_utilization=0.0,
        cpu_utilization=cpu,
        disk_utilization=disk,
        remote_fraction=0.0,
        completions=0,
        per_replication=(),
    )


class TestRhoRatioEdgeCases:
    """Regression: an idle system used to report inf/inf-style garbage."""

    def test_idle_system_is_nan(self):
        assert math.isnan(_averaged_with_utilizations(0.0, 0.0).rho_ratio)

    def test_idle_cpu_busy_disk_is_inf(self):
        assert _averaged_with_utilizations(0.0, 0.5).rho_ratio == math.inf

    def test_normal_ratio_unchanged(self):
        assert _averaged_with_utilizations(0.5, 0.25).rho_ratio == 0.5
