"""Integrity checks on the transcribed paper data.

These guard against transcription drift: the experiment modules and the
benchmark assertions both consume this data, so its internal consistency
matters as much as any code path.
"""

from repro.analysis.improvement import PAPER_CPU_PAIRS, PAPER_LOADS
from repro.experiments.paper_data import (
    TABLE5_WIF,
    TABLE6_FIF,
    TABLE8_THINK,
    TABLE9_MPL,
    TABLE10_CAPACITY,
    TABLE11_SITES,
    TABLE12_FAIRNESS,
)


class TestAnalyticTables:
    def test_grids_cover_every_cpu_pair(self):
        assert set(TABLE5_WIF) == set(PAPER_CPU_PAIRS)
        assert set(TABLE6_FIF) == set(PAPER_CPU_PAIRS)

    def test_rows_have_twelve_cells(self):
        for row in list(TABLE5_WIF.values()) + list(TABLE6_FIF.values()):
            assert len(row) == 12

    def test_values_are_fractions(self):
        for row in list(TABLE5_WIF.values()) + list(TABLE6_FIF.values()):
            assert all(0.0 <= v <= 1.0 for v in row)

    def test_load_totals_increase(self):
        totals = [sum(sum(r) for r in load) for load in PAPER_LOADS]
        assert totals == sorted(totals)


class TestSimulationTables:
    def test_table8_utilization_decreases_with_think_time(self):
        thinks = sorted(TABLE8_THINK)
        rhos = [TABLE8_THINK[t][0] for t in thinks]
        assert rhos == sorted(rhos, reverse=True)

    def test_table8_w_local_decreases_with_think_time(self):
        thinks = sorted(TABLE8_THINK)
        waits = [TABLE8_THINK[t][1] for t in thinks]
        assert waits == sorted(waits, reverse=True)

    def test_table9_monotone_in_mpl(self):
        mpls = sorted(TABLE9_MPL)
        rhos = [TABLE9_MPL[m][0] for m in mpls]
        waits = [TABLE9_MPL[m][1] for m in mpls]
        assert rhos == sorted(rhos)
        assert waits == sorted(waits)

    def test_table10_lert_dominates_local(self):
        for bound, (local, lert) in TABLE10_CAPACITY.items():
            assert lert > local, bound

    def test_table10_capacity_monotone_in_bound(self):
        bounds = sorted(TABLE10_CAPACITY)
        locals_ = [TABLE10_CAPACITY[b][0] for b in bounds]
        lerts = [TABLE10_CAPACITY[b][1] for b in bounds]
        assert locals_ == sorted(locals_)
        assert lerts == sorted(lerts)

    def test_table11_subnet_utilization_monotone(self):
        sites = sorted(TABLE11_SITES)
        bnq_util = [TABLE11_SITES[s][2] for s in sites]
        lert_util = [TABLE11_SITES[s][3] for s in sites]
        assert bnq_util == sorted(bnq_util)
        assert lert_util == sorted(lert_util)

    def test_table12_fairness_crosses_zero(self):
        probs = sorted(TABLE12_FAIRNESS)
        f_values = [TABLE12_FAIRNESS[p][4] for p in probs]
        assert f_values[0] < 0 < f_values[-1]
        assert f_values == sorted(f_values)

    def test_table12_rho_ratio_monotone_in_io_prob(self):
        probs = sorted(TABLE12_FAIRNESS)
        ratios = [TABLE12_FAIRNESS[p][0] for p in probs]
        assert ratios == sorted(ratios)
