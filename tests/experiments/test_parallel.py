"""Serial-vs-parallel equivalence and determinism tests.

The contract under test: for any experiment in the harness, ``jobs=N``
produces results *bit-identical* to ``jobs=1`` — exact float equality, not
approximate.  Common random numbers make this well-defined (each replication
is a pure function of its seed), deterministic reassembly makes it true
regardless of completion order, and fsum-based averaging makes replication
averaging order-independent.
"""

import random

import pytest

from repro.experiments import (
    ablations,
    msg_sensitivity,
    table8,
    table9,
    table10,
    table11,
    table12,
)
from repro.experiments.common import average_results, simulate
from repro.experiments.context import StudyContext
from repro.experiments.parallel import (
    ReplicationTask,
    replication_tasks,
    resolve_jobs,
    run_task,
    run_tasks,
    simulate_many,
)
from repro.experiments.runconfig import QUICK, RunSettings
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.model.config import paper_defaults

#: Short but real runs: full paper-defaults systems, reduced horizons.
SMALL = RunSettings(warmup=150.0, duration=600.0, replications=1, base_seed=42)
SMALL3 = RunSettings(warmup=150.0, duration=600.0, replications=3, base_seed=42)


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_explicit_count(self):
        assert resolve_jobs(7) == 7

    def test_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestTaskSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ReplicationTask(paper_defaults(), "LOCAL", 1, 10.0, 20.0, "warp")

    def test_kwargs_canonicalized(self):
        a = ReplicationTask(
            paper_defaults(),
            "LERT",
            1,
            10.0,
            20.0,
            "stale",
            (("refresh_interval", 5.0),),
        )
        b = ReplicationTask(
            paper_defaults(),
            "LERT",
            1,
            10.0,
            20.0,
            "stale",
            (("refresh_interval", 5.0),),
        )
        assert a == b
        assert a.key() == b.key()

    def test_replication_tasks_use_settings_seeds(self):
        tasks = replication_tasks(paper_defaults(), "BNQ", SMALL3)
        assert [t.seed for t in tasks] == [SMALL3.seed_for(r) for r in range(3)]


class TestSimulateEquivalence:
    def test_single_pair_jobs4_identical(self, tiny_config):
        serial = simulate(tiny_config, "BNQ", SMALL3, jobs=1)
        parallel = simulate(tiny_config, "BNQ", SMALL3, jobs=4)
        assert serial == parallel  # exact dataclass equality, incl. CIs

    def test_simulate_many_matches_individual_simulate(self, tiny_config):
        pairs = [(tiny_config, "LOCAL"), (tiny_config, "BNQ")]
        batch = simulate_many(pairs, SMALL, jobs=4)
        assert batch[0] == simulate(tiny_config, "LOCAL", SMALL)
        assert batch[1] == simulate(tiny_config, "BNQ", SMALL)

    def test_parallel_runs_are_repeatable(self, tiny_config):
        tasks = replication_tasks(tiny_config, "LERT", SMALL3)
        first = run_tasks(tasks, jobs=2)
        second = run_tasks(tasks, jobs=2)
        assert first == second

    def test_worker_matches_in_process_execution(self, tiny_config):
        """Subprocess workers reproduce in-process results exactly."""
        tasks = replication_tasks(tiny_config, "BNQ", SMALL3)[:2]
        in_process = [run_task(task) for task in tasks]
        via_pool = run_tasks(tasks, jobs=2)
        assert in_process == via_pool

    def test_duplicate_tasks_share_one_simulation(self, tiny_config):
        task = replication_tasks(tiny_config, "LOCAL", SMALL)[0]
        twice = run_tasks([task, task], jobs=1)
        assert twice[0] == twice[1] == run_task(task)


class TestAveragingOrderIndependence:
    def test_fsum_averaging_is_permutation_invariant(self, tiny_config):
        tasks = replication_tasks(tiny_config, "BNQ", SMALL3)
        runs = run_tasks(tasks, jobs=1)
        baseline = average_results("BNQ", runs)
        rng = random.Random(0)
        for _ in range(5):
            shuffled = list(runs)
            rng.shuffle(shuffled)
            permuted = average_results("BNQ", shuffled)
            # Averages are exactly equal under permutation...
            assert permuted.mean_waiting_time == baseline.mean_waiting_time
            assert permuted.mean_response_time == baseline.mean_response_time
            assert permuted.fairness == baseline.fairness
            assert permuted.subnet_utilization == baseline.subnet_utilization
            assert permuted.cpu_utilization == baseline.cpu_utilization
            assert permuted.disk_utilization == baseline.disk_utilization
            assert permuted.remote_fraction == baseline.remote_fraction
            assert permuted.completions == baseline.completions
        # ...while per_replication preserves the order given.
        assert baseline.per_replication == tuple(runs)

    def test_average_results_requires_runs(self):
        with pytest.raises(ValueError):
            average_results("LOCAL", [])


#: (module, run_experiment kwargs) — reduced grids keep the suite fast while
#: still exercising every simulated table module through the pool.
TABLE_CASES = [
    pytest.param(table8, {"think_times": (150.0,)}, id="table8"),
    pytest.param(table9, {"mpl_values": (15,)}, id="table9"),
    pytest.param(table10, {"mpl_grid": (6, 10)}, id="table10"),
    pytest.param(table11, {"site_counts": (2, 4)}, id="table11"),
    pytest.param(table12, {"io_probs": (0.4,)}, id="table12"),
    pytest.param(msg_sensitivity, {"msg_lengths": (0.5, 2.0)}, id="msg"),
]


JOBS4 = StudyContext(jobs=4)


class TestTableEquivalence:
    @pytest.mark.parametrize("module, kwargs", TABLE_CASES)
    def test_jobs4_bit_identical_to_serial(self, module, kwargs):
        serial = module.run_experiment(SMALL, **kwargs)
        parallel = module.run_experiment(SMALL, **kwargs, context=JOBS4)
        assert serial == parallel
        assert module.format_table(serial) == module.format_table(parallel)

    def test_table9_quick_scale_equivalence(self):
        """One case at the real ``quick`` preset (the satellite contract)."""
        serial = table9.run_experiment(QUICK, mpl_values=(15,))
        parallel = table9.run_experiment(QUICK, mpl_values=(15,), context=JOBS4)
        assert serial == parallel


class TestSweepEquivalence:
    def test_run_sweep_jobs_identical(self):
        spec = SweepSpec(
            name="mpl",
            base=paper_defaults(num_sites=3, mpl=4, think_time=50.0),
            parameter="site.mpl",
            values=(3, 5),
            policies=("LOCAL", "BNQ"),
        )
        serial = run_sweep(spec, SMALL)
        parallel = run_sweep(spec, SMALL, context=JOBS4)
        assert serial.cells == parallel.cells
        assert serial.series("LOCAL") == parallel.series("LOCAL")


class TestAblationEquivalence:
    def test_stale_info_sweep(self):
        serial = ablations.stale_info_sweep(SMALL, intervals=(0.0, 25.0))
        parallel = ablations.stale_info_sweep(
            SMALL, intervals=(0.0, 25.0), context=JOBS4
        )
        assert serial == parallel

    def test_update_fraction_sweep(self):
        serial = ablations.update_fraction_sweep(SMALL, fractions=(0.0, 0.2))
        parallel = ablations.update_fraction_sweep(
            SMALL, fractions=(0.0, 0.2), context=JOBS4
        )
        assert serial == parallel

    def test_heterogeneity_study(self):
        serial = ablations.heterogeneity_study(SMALL, speed_factors=(0.5, 2.0))
        parallel = ablations.heterogeneity_study(
            SMALL, speed_factors=(0.5, 2.0), context=JOBS4
        )
        assert serial == parallel

    def test_disk_organization_study(self):
        serial = ablations.disk_organization_study(SMALL, policies=("LOCAL",))
        parallel = ablations.disk_organization_study(
            SMALL, policies=("LOCAL",), context=StudyContext(jobs=2)
        )
        assert serial == parallel
