"""The experiment registry: one front door, plus the deprecation pins.

Includes the AST pin required by the PR: no internal caller may use the
deprecated per-module ``main()`` / ``main_*()`` spellings — the only
mentions allowed in ``src/repro`` are the shims themselves (the same
discipline ``tests/workloads/test_terminals_shim.py`` applies to
``start_terminals``).
"""

import ast
import pathlib
import warnings

import pytest

from repro.experiments.registry import (
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
)

SRC_REPRO = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Modules whose ``main()`` is a deprecated shim.
SHIM_MODULES = frozenset(
    {
        "table5",
        "table6",
        "table8",
        "table9",
        "table10",
        "table11",
        "table12",
        "msg_sensitivity",
        "failure",
        "open_system",
        "validation",
    }
)

#: The deprecated ablation entry points (unique names, so any mention
#: outside their defining module is an offense).
ABLATION_SHIMS = frozenset(
    {"main_stale", "main_disk", "main_updates", "main_heterogeneous",
     "main_subnet"}
)


class TestRegistry:
    def test_names_unique_and_ordered(self):
        names = experiment_names()
        assert len(names) == len(set(names))
        assert names[0] == "table5"  # report order: analytic first
        assert names == tuple(e.name for e in all_experiments())

    def test_tables_and_studies_registered(self):
        names = experiment_names()
        for expected in (
            "table5", "table6", "table8", "table9", "table10", "table11",
            "table12", "msg", "failures", "open", "validation",
            "ablation-stale", "ablation-disk", "ablation-updates",
            "ablation-heterogeneous", "ablation-subnet", "study-core",
        ):
            assert expected in names

    def test_every_experiment_is_described(self):
        for experiment in all_experiments():
            assert experiment.title
            assert experiment.description

    def test_only_the_analytic_tables_are_analytic(self):
        analytic = {e.name for e in all_experiments() if e.analytic}
        assert analytic == {"table5", "table6"}

    def test_get_experiment_round_trip(self):
        for name in experiment_names():
            experiment = get_experiment(name)
            assert isinstance(experiment, Experiment)
            assert experiment.name == name

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="table5"):
            get_experiment("table99")

    def test_analytic_run_ignores_settings_and_context(self):
        output = get_experiment("table5").run()
        assert "Table 5" in output


class TestDeprecatedShims:
    def test_table_main_warns_and_still_works(self, capsys):
        from repro.experiments import table5

        with pytest.warns(DeprecationWarning, match="registry"):
            output = table5.main()
        assert "Table 5" in output
        assert "Table 5" in capsys.readouterr().out

    def test_registry_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            get_experiment("table6").run()


def _module_name(path: pathlib.Path) -> str:
    return path.stem


def _called_name(node: ast.Call):
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class TestNoInternalLegacyCallers:
    """AST scan: the deprecated entry points are dead inside ``src/repro``."""

    def test_no_experiment_main_calls_outside_shims(self):
        """No ``<experiment module>.main(...)`` attribute calls anywhere in
        src/repro (bare ``main()`` recursion inside unrelated CLIs like
        ``cli.py`` or ``sanitize.py`` is their own, non-deprecated main)."""
        offenders = []
        for path in sorted(SRC_REPRO.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "main"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in SHIM_MODULES
                ):
                    offenders.append(f"{path}:{node.lineno}")
        assert offenders == [], (
            "internal callers still use a deprecated <module>.main():\n"
            + "\n".join(offenders)
        )

    def test_no_main_imports_from_experiment_modules(self):
        offenders = []
        for path in sorted(SRC_REPRO.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.ImportFrom)
                    and node.module
                    and node.module.rpartition(".")[2] in SHIM_MODULES
                    and any(alias.name == "main" for alias in node.names)
                ):
                    offenders.append(f"{path}:{node.lineno}")
        assert offenders == []

    def test_no_ablation_main_callers_outside_ablations(self):
        offenders = []
        for path in sorted(SRC_REPRO.rglob("*.py")):
            if path.name == "ablations.py" and path.parent.name == "experiments":
                continue  # the shims themselves
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and _called_name(node) in ABLATION_SHIMS
                ):
                    offenders.append(f"{path}:{node.lineno}")
                elif isinstance(node, ast.ImportFrom) and any(
                    alias.name in ABLATION_SHIMS for alias in node.names
                ):
                    offenders.append(f"{path}:{node.lineno}")
        assert offenders == [], (
            "internal callers still use a deprecated ablations.main_*():\n"
            + "\n".join(offenders)
        )
