"""Tests for the one-shot report generator."""

import pytest

from repro.experiments.report import SECTIONS, generate_report, write_report
from repro.experiments.runconfig import RunSettings

TINY = RunSettings(warmup=150.0, duration=600.0, replications=1, base_seed=3)


class TestSections:
    def test_every_paper_table_has_a_section(self):
        titles = " ".join(title for title, _, _ in SECTIONS)
        for table in ("Table 5", "Table 6", "Table 8", "Table 9", "Table 10",
                      "Table 11", "Table 12"):
            assert table in titles


class TestGenerate:
    def test_analytic_only_report(self):
        text = generate_report(TINY, sections=["Table 5", "Table 6"])
        assert text.startswith("# Reproduction report")
        assert "## Table 5" in text
        assert "## Table 6" in text
        assert "Table 8" not in text
        assert "generated in" in text

    def test_filter_is_case_insensitive(self):
        text = generate_report(TINY, sections=["table 5"])
        assert "## Table 5" in text

    def test_settings_recorded(self):
        text = generate_report(TINY, sections=["Table 5"])
        assert "base seed 3" in text

    def test_no_matching_sections(self):
        with pytest.raises(ValueError):
            generate_report(TINY, sections=["Table 99"])

    def test_simulated_section_runs(self):
        text = generate_report(TINY, sections=["Message-length"])
        assert "msg_length" in text


class TestWrite:
    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        write_report(path, TINY, sections=["Table 5"])
        content = path.read_text(encoding="utf-8")
        assert "# Reproduction report" in content
        assert "WIF" in content
