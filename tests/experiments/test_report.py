"""Tests for the one-shot report generator."""

import pytest

from repro.experiments.report import (
    TextTable,
    generate_report,
    improvement_pct,
    report_sections,
    write_report,
)
from repro.experiments.runconfig import RunSettings

TINY = RunSettings(warmup=150.0, duration=600.0, replications=1, base_seed=3)


class TestSections:
    def test_every_paper_table_has_a_section(self):
        titles = " ".join(title for _, title in report_sections())
        for table in ("Table 5", "Table 6", "Table 8", "Table 9", "Table 10",
                      "Table 11", "Table 12"):
            assert table in titles

    def test_sections_mirror_the_registry(self):
        from repro.experiments.registry import all_experiments

        assert report_sections() == tuple(
            (e.name, e.title) for e in all_experiments()
        )


class TestImprovementPct:
    def test_positive_improvement(self):
        assert improvement_pct(50.0, 100.0) == 50.0

    def test_regression_is_negative(self):
        assert improvement_pct(150.0, 100.0) == -50.0

    def test_zero_baseline_guard(self):
        assert improvement_pct(5.0, 0.0) == 0.0


class TestTextTable:
    def test_text_and_markdown_share_cells(self):
        table = TextTable(["policy", "W"], title="T")
        table.add_row("LOCAL", 12.3456)
        text = table.render()
        md = table.render_markdown()
        assert "12.35" in text
        assert "12.35" in md
        assert md.splitlines()[2] == "| policy | W |"

    def test_row_width_mismatch(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")


class TestGenerate:
    def test_analytic_only_report(self):
        text = generate_report(TINY, sections=["Table 5", "Table 6"])
        assert text.startswith("# Reproduction report")
        assert "## Table 5" in text
        assert "## Table 6" in text
        assert "Table 8" not in text
        assert "generated in" in text

    def test_filter_is_case_insensitive(self):
        text = generate_report(TINY, sections=["table 5"])
        assert "## Table 5" in text

    def test_settings_recorded(self):
        text = generate_report(TINY, sections=["Table 5"])
        assert "base seed 3" in text

    def test_no_matching_sections(self):
        with pytest.raises(ValueError):
            generate_report(TINY, sections=["Table 99"])

    def test_simulated_section_runs(self):
        text = generate_report(TINY, sections=["Message-cost"])
        assert "msg_length" in text


class TestWrite:
    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        write_report(path, TINY, sections=["Table 5"])
        content = path.read_text(encoding="utf-8")
        assert "# Reproduction report" in content
        assert "WIF" in content
