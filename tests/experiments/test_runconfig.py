"""Unit tests for run-length presets."""

import pytest

from repro.experiments.runconfig import (
    PAPER,
    QUICK,
    STANDARD,
    RunSettings,
    settings_for,
)


class TestRunSettings:
    def test_defaults_valid(self):
        settings = RunSettings()
        assert settings.warmup >= 0
        assert settings.duration > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSettings(warmup=-1.0)
        with pytest.raises(ValueError):
            RunSettings(duration=0.0)
        with pytest.raises(ValueError):
            RunSettings(replications=0)

    def test_seed_for_is_stable_and_distinct(self):
        settings = RunSettings(base_seed=10)
        assert settings.seed_for(0) == RunSettings(base_seed=10).seed_for(0)
        seeds = {settings.seed_for(r) for r in range(5)}
        assert len(seeds) == 5

    def test_scaled(self):
        settings = RunSettings(warmup=100.0, duration=1000.0)
        longer = settings.scaled(2.0)
        assert longer.warmup == 200.0
        assert longer.duration == 2000.0
        with pytest.raises(ValueError):
            settings.scaled(0.0)


class TestPresets:
    def test_presets_ordered_by_length(self):
        assert QUICK.duration < STANDARD.duration <= PAPER.duration
        assert PAPER.replications >= STANDARD.replications

    def test_settings_for(self):
        assert settings_for("quick") is QUICK
        assert settings_for("paper") is PAPER
        with pytest.raises(ValueError):
            settings_for("galactic")
