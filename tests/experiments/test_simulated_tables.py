"""Smoke tests for the simulation-table experiments at tiny scale.

These verify the harness plumbing (sweeps, row structure, formatting) with
very short runs; the *shape* assertions versus the paper live in the
benchmark suite, which uses longer runs.
"""

import pytest

from repro.experiments import (
    msg_sensitivity,
    table8,
    table9,
    table10,
    table11,
    table12,
)
from repro.experiments.runconfig import RunSettings

TINY = RunSettings(warmup=300.0, duration=1200.0, replications=1, base_seed=77)


class TestTable8Harness:
    def test_reduced_sweep(self):
        result = table8.run_experiment(TINY, think_times=(250.0, 450.0))
        assert len(result.rows) == 2
        row = result.rows[0]
        assert set(row.results) == {"LOCAL", "BNQ", "BNQRD", "LERT"}
        assert row.w_local > 0
        text = table8.format_table(result)
        assert "250" in text

    def test_improvements_computable(self):
        result = table8.run_experiment(TINY, think_times=(350.0,))
        row = result.rows[0]
        for policy in ("BNQ", "BNQRD", "LERT"):
            assert isinstance(row.vs_local(policy), float)
            assert isinstance(row.vs_bnq(policy), float)


class TestTable9Harness:
    def test_reduced_sweep(self):
        result = table9.run_experiment(TINY, mpl_values=(10, 20))
        assert [row.mpl for row in result.rows] == [10, 20]
        assert result.rows[0].w_local < result.rows[1].w_local
        assert "Table 9" in table9.format_table(result)


class TestTable10Harness:
    def test_capacity_extraction(self):
        result = table10.run_experiment(TINY, mpl_grid=(10, 20, 30))
        # Smoothed curve is monotone by construction.
        for policy in ("LOCAL", "LERT"):
            curve = result.smoothed_curve(policy)
            assert curve == sorted(curve)
        assert result.max_mpl("LOCAL", bound=1e9) == 30
        assert result.max_mpl("LOCAL", bound=0.0) == 0
        assert "Table 10" in table10.format_table(result)


class TestTable11Harness:
    def test_reduced_sweep(self):
        result = table11.run_experiment(TINY, site_counts=(2, 4))
        assert [row.num_sites for row in result.rows] == [2, 4]
        assert result.peak_improvement_sites("LERT") in (2, 4)
        assert "Table 11" in table11.format_table(result)

    def test_subnet_utilization_present(self):
        result = table11.run_experiment(TINY, site_counts=(4,))
        assert result.rows[0].subnet_utilization("BNQ") > 0


class TestTable12Harness:
    def test_reduced_sweep(self):
        result = table12.run_experiment(TINY, io_probs=(0.3, 0.8))
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.f_local == pytest.approx(
                row.results["LOCAL"].fairness or 0.0
            )
        assert "Table 12" in table12.format_table(result)

    def test_fairness_improvement_sign_convention(self):
        result = table12.run_experiment(TINY, io_probs=(0.3,))
        row = result.rows[0]
        # Positive means |F| shrank.
        improvement = row.fairness_improvement("LERT")
        f_local = abs(row.f_local)
        f_lert = abs(row.results["LERT"].fairness or 0.0)
        expected = 100.0 * (f_local - f_lert) / f_local if f_local else 0.0
        assert improvement == pytest.approx(expected)


class TestMsgSensitivityHarness:
    def test_reduced_sweep(self):
        result = msg_sensitivity.run_experiment(TINY, msg_lengths=(1.0, 3.0))
        assert len(result.rows) == 2
        assert isinstance(result.gap_widens_with_msg_length(), bool)
        assert "msg_length" in msg_sensitivity.format_table(result)
