"""Unit tests for the generic sweep framework."""

import csv

import pytest

from repro.experiments.runconfig import RunSettings
from repro.experiments.sweep import (
    CSV_COLUMNS,
    SweepSpec,
    run_sweep,
    set_config_parameter,
    write_csv,
)
from repro.model.config import paper_defaults

TINY = RunSettings(warmup=200.0, duration=800.0, replications=1, base_seed=7)


class TestSetConfigParameter:
    def test_top_level(self):
        config = set_config_parameter(paper_defaults(), "num_sites", 4)
        assert config.num_sites == 4

    def test_nested_site(self):
        config = set_config_parameter(paper_defaults(), "site.mpl", 33)
        assert config.site.mpl == 33

    def test_nested_network(self):
        config = set_config_parameter(paper_defaults(), "network.msg_length", 2.5)
        assert config.network.msg_length == 2.5

    def test_original_untouched(self):
        base = paper_defaults()
        set_config_parameter(base, "site.mpl", 99)
        assert base.site.mpl == 20

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            set_config_parameter(paper_defaults(), "site.warp_factor", 9)
        with pytest.raises(KeyError):
            set_config_parameter(paper_defaults(), "nonsense", 1)
        with pytest.raises(KeyError):
            set_config_parameter(paper_defaults(), "a.b.c", 1)

    def test_non_dataclass_section(self):
        """Dotting into a scalar field is a KeyError, not an AttributeError."""
        with pytest.raises(KeyError, match="not a nested config section"):
            set_config_parameter(paper_defaults(), "disk_organization.kind", "x")
        with pytest.raises(KeyError, match="not a nested config section"):
            set_config_parameter(paper_defaults(), "num_sites.value", 3)

    def test_validation_still_applies(self):
        with pytest.raises(Exception):
            set_config_parameter(paper_defaults(), "site.mpl", 0)


class TestSweepSpec:
    def test_fails_fast_on_bad_parameter(self):
        with pytest.raises(KeyError):
            SweepSpec(
                name="x",
                base=paper_defaults(),
                parameter="site.bogus",
                values=(1,),
            )

    def test_requires_values_and_policies(self):
        with pytest.raises(ValueError):
            SweepSpec("x", paper_defaults(), "site.mpl", values=())
        with pytest.raises(ValueError):
            SweepSpec(
                "x", paper_defaults(), "site.mpl", values=(10,), policies=()
            )


class TestRunSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self, tmp_path_factory):
        spec = SweepSpec(
            name="think-sweep",
            base=paper_defaults(num_sites=3, mpl=4, think_time=50.0),
            parameter="site.think_time",
            values=(40.0, 80.0),
            policies=("LOCAL", "BNQ"),
        )
        return run_sweep(spec, TINY)

    def test_all_cells_present(self, small_sweep):
        assert len(small_sweep.cells) == 4
        for value in (40.0, 80.0):
            for policy in ("LOCAL", "BNQ"):
                assert small_sweep.result(value, policy).completions > 0

    def test_series_ordering(self, small_sweep):
        series = small_sweep.series("LOCAL")
        assert len(series) == 2
        # Longer think time -> lighter load -> less waiting.
        assert series[1] < series[0]

    def test_csv_export(self, small_sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        write_csv(small_sweep, path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(CSV_COLUMNS)
        assert len(rows) == 1 + 4
        policies = {row[3] for row in rows[1:]}
        assert policies == {"LOCAL", "BNQ"}
        # Numeric columns parse as floats.
        for row in rows[1:]:
            float(row[4])
            float(row[5])
