"""Tests for the substrate cross-validation experiment."""

import pytest

from repro.experiments import validation
from repro.experiments.runconfig import RunSettings

TINY = RunSettings(warmup=200.0, duration=2500.0, replications=1, base_seed=12)


@pytest.fixture(scope="module")
def result():
    return validation.run_experiment(TINY)


class TestValidationExperiment:
    def test_covers_every_station_type(self):
        cases = validation.standard_cases()
        kinds = set()
        for case in cases:
            for station in case.network.stations:
                kinds.add(station.kind.value)
        assert {"fcfs", "ps", "multiserver"} <= kinds

    def test_simulator_agrees_with_exact_mva(self, result):
        assert result.worst_sim_error_pct() < 6.0

    def test_exact_solutions_respect_bounds(self, result):
        assert result.all_within_bounds()

    def test_amva_tracks_exact(self, result):
        for row in result.rows:
            assert row.approximate == pytest.approx(row.exact, rel=0.15)

    def test_formatting(self, result):
        text = validation.format_table(result)
        assert "cross-validation" in text
        assert "machine-repairman" in text

    def test_rows_cover_all_populated_classes(self, result):
        names = {(row.case, row.class_name) for row in result.rows}
        assert ("db-site (per-disk)", "io") in names
        assert ("db-site (per-disk)", "cpu") in names
