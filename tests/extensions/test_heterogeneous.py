"""Unit tests for the heterogeneous-sites extension."""

import pytest

from repro.extensions.heterogeneous import (
    HeterogeneousDatabase,
    HeterogeneousLERTPolicy,
)
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy


def _factors(config, slow=0.5, fast=2.0):
    half = config.num_sites // 2
    return [slow] * half + [fast] * (config.num_sites - half)


class TestConstruction:
    def test_factor_count_must_match(self, tiny_config):
        with pytest.raises(ValueError):
            HeterogeneousDatabase(tiny_config, make_policy("LERT"), [1.0])

    def test_factors_must_be_positive(self, tiny_config):
        with pytest.raises(ValueError):
            HeterogeneousDatabase(
                tiny_config, make_policy("LERT"), [1.0, 0.0, 1.0]
            )


class TestBehaviour:
    def test_unit_factors_match_base_system(self, tiny_config):
        base = DistributedDatabase(tiny_config, make_policy("LERT"), seed=1)
        rb = base.run(200.0, 1200.0)
        het = HeterogeneousDatabase(
            tiny_config, make_policy("LERT"), [1.0] * tiny_config.num_sites, seed=1
        )
        rh = het.run(200.0, 1200.0)
        # Same seeds, same workload, same (unit) speeds: identical runs.
        assert rh.mean_waiting_time == pytest.approx(rb.mean_waiting_time)
        assert rh.completions == rb.completions

    def test_faster_fleet_responds_faster(self, tiny_config):
        slow = HeterogeneousDatabase(
            tiny_config, make_policy("LOCAL"), [1.0] * tiny_config.num_sites, seed=2
        )
        fast = HeterogeneousDatabase(
            tiny_config, make_policy("LOCAL"), [2.0] * tiny_config.num_sites, seed=2
        )
        rt_slow = slow.run(200.0, 1500.0).mean_response_time
        rt_fast = fast.run(200.0, 1500.0).mean_response_time
        assert rt_fast < rt_slow

    def test_local_hurt_by_heterogeneity(self, tiny_config):
        uniform = HeterogeneousDatabase(
            tiny_config, make_policy("LOCAL"), [1.0] * tiny_config.num_sites, seed=3
        )
        mixed = HeterogeneousDatabase(
            tiny_config, make_policy("LOCAL"), _factors(tiny_config), seed=3
        )
        # Same mean speed-weighted capacity is not guaranteed, but LOCAL on
        # a mixed fleet must be worse than informed allocation on the same
        # fleet — tested next; here, mixed-LOCAL is worse than LERT-HET.
        rt_mixed_local = mixed.run(300.0, 1500.0).mean_response_time
        informed = HeterogeneousDatabase(
            tiny_config,
            HeterogeneousLERTPolicy(),
            _factors(tiny_config),
            seed=3,
        )
        rt_informed = informed.run(300.0, 1500.0).mean_response_time
        assert rt_informed < rt_mixed_local
        assert uniform is not None  # keep the uniform run for symmetry

    def test_lert_het_requires_heterogeneous_system(self, tiny_config):
        system = DistributedDatabase(tiny_config, HeterogeneousLERTPolicy(), seed=4)
        with pytest.raises(RuntimeError):
            system.run(10.0, 50.0)

    def test_lert_het_prefers_fast_sites(self, tiny_config):
        factors = [0.25] + [1.0] * (tiny_config.num_sites - 1)
        system = HeterogeneousDatabase(
            tiny_config, HeterogeneousLERTPolicy(), factors, seed=5
        )
        executed_at = []
        original = system.metrics.record

        def spy(query):
            executed_at.append(query.execution_site)
            original(query)

        system.metrics.record = spy
        system.run(200.0, 1200.0)
        slow_share = executed_at.count(0) / len(executed_at)
        # Site 0 is 4x slower; a speed-aware policy sends it well under its
        # fair 1/num_sites share of the work.
        assert slow_share < 1.0 / tiny_config.num_sites
