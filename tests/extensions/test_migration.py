"""Unit tests for the query-migration extension."""

import pytest

from repro.extensions.migration import MigratingDatabase
from repro.policies.registry import make_policy


class TestConstruction:
    def test_invalid_arguments(self, tiny_config):
        with pytest.raises(ValueError):
            MigratingDatabase(tiny_config, make_policy("LERT"), check_interval=0)
        with pytest.raises(ValueError):
            MigratingDatabase(tiny_config, make_policy("LERT"), threshold=0.9)
        with pytest.raises(ValueError):
            MigratingDatabase(tiny_config, make_policy("LERT"), max_migrations=-1)


class TestBehaviour:
    def test_migrations_happen_with_cost_based_policy(self, tiny_config):
        system = MigratingDatabase(
            tiny_config, make_policy("LERT"), seed=1, threshold=1.1
        )
        results = system.run(warmup=200.0, duration=1500.0)
        assert results.completions > 50
        assert system.total_migrations > 0

    def test_local_policy_never_migrates(self, tiny_config):
        # LOCAL is not cost-based: no cost function means no migration.
        system = MigratingDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        system.run(warmup=200.0, duration=1000.0)
        assert system.total_migrations == 0

    def test_max_migrations_zero_disables(self, tiny_config):
        system = MigratingDatabase(
            tiny_config, make_policy("LERT"), seed=1, max_migrations=0
        )
        system.run(warmup=200.0, duration=1000.0)
        assert system.total_migrations == 0

    def test_huge_threshold_suppresses_migration(self, tiny_config):
        system = MigratingDatabase(
            tiny_config, make_policy("LERT"), seed=1, threshold=1000.0
        )
        system.run(warmup=200.0, duration=1000.0)
        assert system.total_migrations == 0

    def test_load_board_stays_consistent(self, tiny_config):
        system = MigratingDatabase(
            tiny_config, make_policy("LERT"), seed=2, threshold=1.1
        )
        system.run(warmup=200.0, duration=1500.0)
        population = tiny_config.num_sites * tiny_config.site.mpl
        assert 0 <= system.load_board.total_queries <= population

    def test_migration_does_not_hurt_much(self, tiny_config):
        # Conservative hysteresis should keep migration no worse than the
        # base system (common random numbers make this a paired test).
        from repro.model.system import DistributedDatabase

        base = DistributedDatabase(tiny_config, make_policy("LERT"), seed=3)
        w_base = base.run(300.0, 2000.0).mean_waiting_time
        migrating = MigratingDatabase(
            tiny_config, make_policy("LERT"), seed=3, threshold=1.5
        )
        w_migrating = migrating.run(300.0, 2000.0).mean_waiting_time
        assert w_migrating < w_base * 1.25

    def test_query_migration_counter_bounded(self, tiny_config):
        system = MigratingDatabase(
            tiny_config, make_policy("LERT"), seed=4, threshold=1.05, max_migrations=2
        )
        collected = []
        original_record = system.metrics.record

        def spy(query):
            collected.append(query.migrations)
            original_record(query)

        system.metrics.record = spy
        system.run(warmup=0.0, duration=1500.0)
        assert collected, "no queries completed"
        assert max(collected) <= 2
