"""Unit tests for the partial-replication extension."""

import pytest

from repro.extensions.partial_replication import (
    PartialReplicationDatabase,
    ReplicationMap,
)
from repro.policies.registry import make_policy


class TestReplicationMap:
    def test_full(self):
        replication = ReplicationMap.full(4, num_items=3)
        assert replication.num_items == 3
        assert replication.holders(0) == (0, 1, 2, 3)
        assert replication.mean_copies == 4.0

    def test_random_k_properties(self):
        replication = ReplicationMap.random_k(6, num_items=20, copies=3, seed=1)
        assert replication.num_items == 20
        for item in range(20):
            holders = replication.holders(item)
            assert len(holders) == 3
            assert len(set(holders)) == 3

    def test_random_k_deterministic_by_seed(self):
        a = ReplicationMap.random_k(6, 10, 2, seed=5)
        b = ReplicationMap.random_k(6, 10, 2, seed=5)
        assert a.placement == b.placement

    def test_round_robin_balances_sites(self):
        replication = ReplicationMap.round_robin_k(4, num_items=8, copies=2)
        per_site = [0] * 4
        for item in range(8):
            for holder in replication.holders(item):
                per_site[holder] += 1
        assert len(set(per_site)) == 1  # perfectly balanced

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationMap(2, ())
        with pytest.raises(ValueError):
            ReplicationMap(2, ((),))
        with pytest.raises(ValueError):
            ReplicationMap(2, ((0, 0),))
        with pytest.raises(ValueError):
            ReplicationMap(2, ((5,),))
        with pytest.raises(ValueError):
            ReplicationMap.random_k(4, 2, copies=5)


class TestPartialReplicationDatabase:
    def test_rejects_mismatched_map(self, tiny_config):
        replication = ReplicationMap.full(5)
        with pytest.raises(ValueError):
            PartialReplicationDatabase(
                tiny_config, make_policy("LERT"), replication
            )

    def test_queries_only_run_at_holders(self, tiny_config):
        replication = ReplicationMap.round_robin_k(
            tiny_config.num_sites, num_items=6, copies=2
        )
        system = PartialReplicationDatabase(
            tiny_config, make_policy("LERT"), replication, seed=1
        )
        violations = []
        original_record = system.metrics.record

        def spy(query):
            if query.execution_site not in replication.holders(query.data_item):
                violations.append(query.qid)
            original_record(query)

        system.metrics.record = spy
        results = system.run(warmup=100.0, duration=800.0)
        assert results.completions > 30
        assert violations == []

    def test_every_policy_works_restricted(self, tiny_config):
        replication = ReplicationMap.round_robin_k(
            tiny_config.num_sites, num_items=6, copies=1
        )
        for name in ("LOCAL", "RANDOM", "BNQ", "LERT"):
            system = PartialReplicationDatabase(
                tiny_config, make_policy(name), replication, seed=2
            )
            results = system.run(warmup=100.0, duration=500.0)
            assert results.completions > 0, name

    def test_single_copy_forces_placement(self, tiny_config):
        replication = ReplicationMap(
            tiny_config.num_sites,
            tuple((1,) for _ in range(4)),  # everything lives on site 1
        )
        system = PartialReplicationDatabase(
            tiny_config, make_policy("LERT"), replication, seed=3
        )
        seen_sites = set()
        original_record = system.metrics.record

        def spy(query):
            seen_sites.add(query.execution_site)
            original_record(query)

        system.metrics.record = spy
        system.run(warmup=50.0, duration=400.0)
        assert seen_sites == {1}

    def test_item_weights_skew_access(self, tiny_config):
        replication = ReplicationMap.full(tiny_config.num_sites, num_items=2)
        system = PartialReplicationDatabase(
            tiny_config,
            make_policy("LOCAL"),
            replication,
            seed=4,
            item_weights=(0.9, 0.1),
        )
        items = []
        original_record = system.metrics.record

        def spy(query):
            items.append(query.data_item)
            original_record(query)

        system.metrics.record = spy
        system.run(warmup=0.0, duration=1500.0)
        assert items
        hot_fraction = items.count(0) / len(items)
        assert hot_fraction > 0.75

    def test_invalid_item_weights(self, tiny_config):
        replication = ReplicationMap.full(tiny_config.num_sites, num_items=2)
        with pytest.raises(ValueError):
            PartialReplicationDatabase(
                tiny_config,
                make_policy("LOCAL"),
                replication,
                item_weights=(1.0,),
            )
        with pytest.raises(ValueError):
            PartialReplicationDatabase(
                tiny_config,
                make_policy("LOCAL"),
                replication,
                item_weights=(-1.0, 2.0),
            )

    def test_more_copies_do_not_hurt(self, tiny_config):
        # Same workload, more freedom: 3 copies should beat 1 copy.
        waits = {}
        for copies in (1, 3):
            replication = ReplicationMap.round_robin_k(
                tiny_config.num_sites, num_items=6, copies=copies
            )
            system = PartialReplicationDatabase(
                tiny_config, make_policy("LERT"), replication, seed=5
            )
            waits[copies] = system.run(300.0, 2000.0).mean_waiting_time
        assert waits[3] < waits[1] * 1.05
