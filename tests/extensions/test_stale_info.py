"""Unit tests for the stale load-information extension."""

import pytest

from repro.extensions.stale_info import StaleInfoDatabase
from repro.model.loadboard import FrozenLoadView
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy


class TestConstruction:
    def test_zero_interval_uses_live_board(self, tiny_config):
        system = StaleInfoDatabase(
            tiny_config, make_policy("LERT"), seed=1, refresh_interval=0.0
        )
        assert system.load_view is system.load_board

    def test_positive_interval_uses_snapshot(self, tiny_config):
        system = StaleInfoDatabase(
            tiny_config, make_policy("LERT"), seed=1, refresh_interval=10.0
        )
        assert isinstance(system.load_view, FrozenLoadView)

    def test_invalid_arguments(self, tiny_config):
        with pytest.raises(ValueError):
            StaleInfoDatabase(
                tiny_config, make_policy("LERT"), refresh_interval=-1.0
            )
        with pytest.raises(ValueError):
            StaleInfoDatabase(
                tiny_config, make_policy("LERT"), broadcast_cost=-1.0
            )


class TestRefreshBehaviour:
    def test_refresh_count_matches_interval(self, tiny_config):
        system = StaleInfoDatabase(
            tiny_config, make_policy("LERT"), seed=1, refresh_interval=100.0
        )
        system.run(warmup=0.0, duration=1000.0)
        assert system.refreshes == 10

    def test_view_is_replaced_on_refresh(self, tiny_config):
        system = StaleInfoDatabase(
            tiny_config, make_policy("LERT"), seed=1, refresh_interval=50.0
        )
        before = system.load_view
        system.run(warmup=0.0, duration=120.0)
        assert system.load_view is not before

    def test_broadcast_charges_the_ring(self, tiny_config):
        free = StaleInfoDatabase(
            tiny_config, make_policy("LOCAL"), seed=1, refresh_interval=50.0
        )
        free.run(warmup=0.0, duration=500.0)
        paid = StaleInfoDatabase(
            tiny_config,
            make_policy("LOCAL"),
            seed=1,
            refresh_interval=50.0,
            broadcast_cost=0.5,
        )
        paid.run(warmup=0.0, duration=500.0)
        # LOCAL sends no queries; all traffic is control messages.
        assert free.ring.messages_delivered == 0
        assert paid.ring.messages_delivered > 0

    def test_fresh_beats_very_stale(self, tiny_config):
        fresh = StaleInfoDatabase(
            tiny_config, make_policy("LERT"), seed=2, refresh_interval=0.0
        )
        w_fresh = fresh.run(warmup=300.0, duration=1500.0).mean_waiting_time
        stale = StaleInfoDatabase(
            tiny_config, make_policy("LERT"), seed=2, refresh_interval=500.0
        )
        w_stale = stale.run(warmup=300.0, duration=1500.0).mean_waiting_time
        assert w_fresh < w_stale

    def test_zero_interval_matches_base_system(self, tiny_config):
        base = DistributedDatabase(tiny_config, make_policy("LERT"), seed=3)
        oracle = StaleInfoDatabase(
            tiny_config, make_policy("LERT"), seed=3, refresh_interval=0.0
        )
        rb = base.run(warmup=100.0, duration=500.0)
        ro = oracle.run(warmup=100.0, duration=500.0)
        assert rb.mean_waiting_time == ro.mean_waiting_time
