"""Unit tests for the subquery-pipeline extension."""

import pytest

from repro.extensions.partial_replication import ReplicationMap
from repro.extensions.subqueries import SubqueryDatabase
from repro.policies.registry import make_policy


def _replication(config, copies=2, items=8):
    return ReplicationMap.round_robin_k(config.num_sites, items, copies)


class TestConstruction:
    def test_invalid_arguments(self, tiny_config):
        replication = _replication(tiny_config)
        with pytest.raises(ValueError):
            SubqueryDatabase(
                tiny_config, make_policy("LERT"), replication, multi_prob=1.5
            )
        with pytest.raises(ValueError):
            SubqueryDatabase(
                tiny_config, make_policy("LERT"), replication, subquery_count=1
            )


class TestBehaviour:
    def test_zero_multi_prob_degenerates_to_partial_replication(self, tiny_config):
        from repro.extensions.partial_replication import PartialReplicationDatabase

        replication = _replication(tiny_config)
        plain = PartialReplicationDatabase(
            tiny_config, make_policy("LERT"), replication, seed=1
        )
        staged = SubqueryDatabase(
            tiny_config, make_policy("LERT"), replication, seed=1, multi_prob=0.0
        )
        rp = plain.run(200.0, 1200.0)
        rs = staged.run(200.0, 1200.0)
        assert staged.distributed_queries == 0
        assert staged.data_moves == 0
        # Same seed + no distributed queries: only the extra multi_prob
        # draw differs, which consumes one value from each query's private
        # stream — results stay in the same regime.
        assert rs.mean_waiting_time == pytest.approx(rp.mean_waiting_time, rel=0.5)

    def test_distributed_fraction_tracks_probability(self, tiny_config):
        system = SubqueryDatabase(
            tiny_config,
            make_policy("LERT"),
            _replication(tiny_config),
            seed=2,
            multi_prob=0.4,
        )
        results = system.run(0.0, 3000.0)
        fraction = system.distributed_queries / results.completions
        assert fraction == pytest.approx(0.4, abs=0.06)

    def test_stages_run_only_at_holders(self, tiny_config):
        replication = _replication(tiny_config, copies=1)
        system = SubqueryDatabase(
            tiny_config,
            make_policy("LERT"),
            replication,
            seed=3,
            multi_prob=1.0,
            subquery_count=2,
        )
        # With one copy per item, every stage's site is forced; the system
        # must still complete queries and count moves.
        results = system.run(200.0, 1500.0)
        assert results.completions > 20
        assert system.data_moves > 0

    def test_load_board_balanced_at_end(self, tiny_config):
        system = SubqueryDatabase(
            tiny_config,
            make_policy("LERT"),
            _replication(tiny_config),
            seed=4,
            multi_prob=0.7,
            subquery_count=3,
        )
        system.run(200.0, 2000.0)
        population = tiny_config.num_sites * tiny_config.site.mpl
        assert 0 <= system.load_board.total_queries <= population

    def test_informed_allocation_still_wins_under_load(self, tiny_config):
        # The tiny fixture is nearly contention-free (waits < 1), where
        # transfers are pure overhead; shorten think time so there is load
        # worth balancing.
        loaded = tiny_config.with_site(think_time=15.0)
        waits = {}
        for name in ("LOCAL", "LERT"):
            system = SubqueryDatabase(
                loaded,
                make_policy(name),
                _replication(loaded, copies=3),
                seed=5,
                multi_prob=0.5,
            )
            waits[name] = system.run(300.0, 2500.0).mean_waiting_time
        assert waits["LERT"] < waits["LOCAL"]

    def test_works_with_non_cost_policies(self, tiny_config):
        system = SubqueryDatabase(
            tiny_config,
            make_policy("RANDOM"),
            _replication(tiny_config),
            seed=6,
            multi_prob=0.5,
        )
        results = system.run(100.0, 800.0)
        assert results.completions > 10

    def test_more_stages_more_moves(self, tiny_config):
        moves = {}
        for count in (2, 4):
            system = SubqueryDatabase(
                tiny_config,
                make_policy("LERT"),
                _replication(tiny_config),
                seed=7,
                multi_prob=1.0,
                subquery_count=count,
            )
            system.run(100.0, 1200.0)
            moves[count] = system.data_moves
        assert moves[4] > moves[2]
