"""Unit tests for the update-workload extension."""

import pytest

from repro.extensions.updates import UpdateWorkloadDatabase
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy


class TestConstruction:
    def test_invalid_arguments(self, tiny_config):
        with pytest.raises(ValueError):
            UpdateWorkloadDatabase(tiny_config, make_policy("LERT"), update_prob=1.5)
        with pytest.raises(ValueError):
            UpdateWorkloadDatabase(tiny_config, make_policy("LERT"), update_pages=0)
        with pytest.raises(ValueError):
            UpdateWorkloadDatabase(
                tiny_config, make_policy("LERT"), apply_cpu_time=0.0
            )


class TestBehaviour:
    def test_zero_update_prob_matches_base_system(self, tiny_config):
        base = DistributedDatabase(tiny_config, make_policy("LERT"), seed=1)
        rb = base.run(200.0, 1000.0)
        updates = UpdateWorkloadDatabase(
            tiny_config, make_policy("LERT"), seed=1, update_prob=0.0
        )
        ru = updates.run(200.0, 1000.0)
        assert updates.updates_executed == 0
        # The extra random() draw per query changes nothing else because
        # each query owns its private stream... except the draw itself, so
        # compare loosely.
        assert ru.mean_waiting_time == pytest.approx(rb.mean_waiting_time, rel=0.35)

    def test_updates_propagate_to_all_replicas(self, tiny_config):
        system = UpdateWorkloadDatabase(
            tiny_config, make_policy("LERT"), seed=2, update_prob=0.5
        )
        system.run(200.0, 1500.0)
        assert system.updates_executed > 0
        expected_applies = system.updates_executed * (tiny_config.num_sites - 1)
        # Applies started equals updates * (sites - 1); a few may still be
        # in flight at the end of the run.
        assert system._applies_started == expected_applies
        assert 0 <= system.pending_applies <= expected_applies
        assert system.applies_completed > 0

    def test_update_fraction_tracks_probability(self, tiny_config):
        system = UpdateWorkloadDatabase(
            tiny_config, make_policy("LOCAL"), seed=3, update_prob=0.3
        )
        results = system.run(0.0, 3000.0)
        fraction = system.updates_executed / results.completions
        assert fraction == pytest.approx(0.3, abs=0.05)

    def test_updates_increase_subnet_load(self, tiny_config):
        quiet = UpdateWorkloadDatabase(
            tiny_config, make_policy("LERT"), seed=4, update_prob=0.0
        )
        loud = UpdateWorkloadDatabase(
            tiny_config, make_policy("LERT"), seed=4, update_prob=0.5
        )
        u_quiet = quiet.run(200.0, 1200.0).subnet_utilization
        u_loud = loud.run(200.0, 1200.0).subnet_utilization
        assert u_loud > u_quiet

    def test_updates_slow_the_system(self, tiny_config):
        light = UpdateWorkloadDatabase(
            tiny_config, make_policy("LERT"), seed=5, update_prob=0.0
        )
        heavy = UpdateWorkloadDatabase(
            tiny_config, make_policy("LERT"), seed=5, update_prob=0.6
        )
        w_light = light.run(300.0, 2000.0).mean_waiting_time
        w_heavy = heavy.run(300.0, 2000.0).mean_waiting_time
        assert w_heavy > w_light

    def test_policy_ranking_survives_updates(self, tiny_config):
        waits = {}
        for policy in ("LOCAL", "LERT"):
            system = UpdateWorkloadDatabase(
                tiny_config, make_policy(policy), seed=6, update_prob=0.2
            )
            waits[policy] = system.run(300.0, 2000.0).mean_waiting_time
        assert waits["LERT"] < waits["LOCAL"]
