"""Tests for the fault-injection layer (repro.faults)."""
