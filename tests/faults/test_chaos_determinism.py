"""Chaos determinism: the same ``(seed, FaultPlan)`` replays byte-identically.

These tests pin the headline guarantee of the fault layer:

* identical ``(seed, plan)`` pairs produce **equal** ``SystemResults``
  *and* byte-identical telemetry JSONL, serially and under the process
  pool;
* the empty :class:`FaultPlan` is a strict no-op — results are
  byte-identical to a run with no plan at all;
* the result cache separates faulted and faultless runs (and only
  those): a faulted run can never be answered from a faultless entry,
  while a no-op plan maps onto the faultless key.
"""

import dataclasses

import pytest

from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.parallel import ReplicationTask, replication_tasks, run_tasks
from repro.experiments.runconfig import RunSettings
from repro.faults.plan import (
    FaultPlan,
    LoadBoardOutage,
    MessageFaults,
    RandomOutages,
    SiteOutage,
)
from repro.model.serialization import (
    fault_plan_from_dict,
    fault_plan_to_dict,
    results_from_dict,
    results_to_dict,
)
from repro.runner import RunSpec, run
from repro.telemetry.exporters import events_to_jsonl
from repro.telemetry.session import TelemetryConfig

CHAOS = FaultPlan(
    site_outages=(SiteOutage(0, 120.0, 40.0),),
    random_outages=(RandomOutages(mtbf=500.0, mttr=25.0),),
    messages=MessageFaults(loss_prob=0.05, retransmit_timeout=2.0),
    loadboard_outages=(LoadBoardOutage(200.0, 50.0),),
    max_retries=10,
    retry_backoff=2.0,
)

SPEC = dict(warmup=50.0, duration=500.0, seed=1234)


def chaos_report(tiny_config, *, policy="BNQ", telemetry=None, plan=CHAOS, seed=1234):
    return run(
        tiny_config,
        policy,
        RunSpec(
            warmup=50.0,
            duration=500.0,
            seed=seed,
            telemetry=telemetry,
            faults=plan,
        ),
    )


class TestByteIdenticalReplay:
    def test_results_replay_identically(self, tiny_config):
        first = chaos_report(tiny_config).results
        second = chaos_report(tiny_config).results
        assert first == second  # frozen dataclass equality: every field

    def test_availability_replays_identically(self, tiny_config):
        first = chaos_report(tiny_config).results.availability
        second = chaos_report(tiny_config).results.availability
        assert first is not None
        assert first == second

    def test_telemetry_jsonl_is_byte_identical(self, tiny_config):
        config = TelemetryConfig(events=True)
        first = chaos_report(tiny_config, telemetry=config)
        second = chaos_report(tiny_config, telemetry=config)
        a = events_to_jsonl(first.events)
        b = events_to_jsonl(second.events)
        assert a == b
        assert "SiteCrashed" in a  # chaos really happened on the record

    def test_serialized_results_are_byte_identical(self, tiny_config):
        import json

        a = json.dumps(results_to_dict(chaos_report(tiny_config).results))
        b = json.dumps(results_to_dict(chaos_report(tiny_config).results))
        assert a == b

    def test_all_policies_replay(self, tiny_config):
        for policy in ("LOCAL", "RANDOM", "BNQ", "LERT"):
            first = chaos_report(tiny_config, policy=policy).results
            second = chaos_report(tiny_config, policy=policy).results
            assert first == second, policy

    def test_different_seed_diverges(self, tiny_config):
        a = chaos_report(tiny_config, seed=1).results
        b = chaos_report(tiny_config, seed=2).results
        assert a != b


class TestNoopPlanIsStrictNoop:
    def test_empty_plan_matches_no_plan(self, tiny_config):
        plain = run(tiny_config, "BNQ", RunSpec(**SPEC)).results
        noop = run(
            tiny_config, "BNQ", RunSpec(**SPEC, faults=FaultPlan())
        ).results
        assert noop == plain
        assert noop.availability is None  # normalized away entirely

    def test_noop_message_faults_match_no_plan(self, tiny_config):
        plain = run(tiny_config, "LERT", RunSpec(**SPEC)).results
        noop = run(
            tiny_config,
            "LERT",
            RunSpec(**SPEC, faults=FaultPlan(messages=MessageFaults())),
        ).results
        assert noop == plain

    def test_noop_plan_telemetry_matches_no_plan(self, tiny_config):
        config = TelemetryConfig(events=True)
        plain = run(
            tiny_config, "BNQ", RunSpec(**SPEC, telemetry=config)
        ).events
        noop = run(
            tiny_config,
            "BNQ",
            RunSpec(**SPEC, telemetry=config, faults=FaultPlan()),
        ).events
        assert events_to_jsonl(plain) == events_to_jsonl(noop)

    def test_settings_normalize_noop_to_none(self):
        settings = RunSettings(warmup=10.0, duration=20.0, faults=FaultPlan())
        assert settings.faults is None

    def test_task_normalizes_noop_to_none(self, tiny_config):
        task = ReplicationTask(
            config=tiny_config,
            policy="BNQ",
            seed=1,
            warmup=10.0,
            duration=20.0,
            faults=FaultPlan(),
        )
        assert task.faults is None


class TestParallelReplay:
    def test_jobs2_matches_serial(self, tiny_config):
        settings = RunSettings(
            warmup=50.0, duration=400.0, replications=2, faults=CHAOS
        )
        tasks = replication_tasks(tiny_config, "BNQ", settings)
        assert all(task.faults == CHAOS for task in tasks)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert serial == parallel

    def test_faults_rejected_for_extension_kinds(self, tiny_config):
        with pytest.raises(ValueError, match="standard"):
            ReplicationTask(
                config=tiny_config,
                policy="BNQ",
                seed=1,
                warmup=10.0,
                duration=20.0,
                system_kind="stale",
                faults=CHAOS,
            )


class TestCacheSeparation:
    def test_faulted_key_differs_from_faultless(self, tiny_config):
        base = cache_key(tiny_config, "BNQ", seed=1, warmup=10.0, duration=20.0)
        faulted = cache_key(
            tiny_config, "BNQ", seed=1, warmup=10.0, duration=20.0, faults=CHAOS
        )
        assert base != faulted

    def test_none_faults_key_is_the_legacy_key(self, tiny_config):
        """``faults=None`` must hash exactly like the pre-faults payload,
        so existing cache archives stay addressable."""
        base = cache_key(tiny_config, "BNQ", seed=1, warmup=10.0, duration=20.0)
        explicit = cache_key(
            tiny_config, "BNQ", seed=1, warmup=10.0, duration=20.0, faults=None
        )
        assert base == explicit

    def test_different_plans_different_keys(self, tiny_config):
        a = cache_key(
            tiny_config, "BNQ", seed=1, warmup=10.0, duration=20.0, faults=CHAOS
        )
        b = cache_key(
            tiny_config,
            "BNQ",
            seed=1,
            warmup=10.0,
            duration=20.0,
            faults=dataclasses.replace(CHAOS, max_retries=3),
        )
        assert a != b

    def test_faulted_run_roundtrips_through_cache(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        settings = RunSettings(warmup=50.0, duration=400.0, faults=CHAOS)
        tasks = replication_tasks(tiny_config, "BNQ", settings)
        fresh = run_tasks(tasks, cache=cache)
        again = run_tasks(tasks, cache=cache)
        assert fresh == again
        assert fresh[0].availability is not None
        assert cache.stats.hits == len(tasks)

    def test_faultless_entry_never_answers_faulted_task(
        self, tiny_config, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        plain_settings = RunSettings(warmup=50.0, duration=400.0)
        plain = run_tasks(
            replication_tasks(tiny_config, "BNQ", plain_settings), cache=cache
        )
        faulted = run_tasks(
            replication_tasks(
                tiny_config, "BNQ", plain_settings.with_faults(CHAOS)
            ),
            cache=cache,
        )
        assert plain != faulted  # a cache mixup would make these equal
        assert faulted[0].availability is not None
        assert plain[0].availability is None


class TestPlanSerializationRoundTrip:
    def test_chaos_plan_roundtrips(self):
        assert fault_plan_from_dict(fault_plan_to_dict(CHAOS)) == CHAOS

    def test_results_with_availability_roundtrip(self, tiny_config):
        results = chaos_report(tiny_config).results
        assert results.availability is not None
        restored = results_from_dict(results_to_dict(results))
        assert restored == results
