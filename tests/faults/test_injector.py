"""FaultInjector behaviour: scheduling, downtime accounting, tie-breaks."""

import pytest

from repro.faults.injector import FAULT_PRIORITY, FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LoadBoardOutage,
    MessageFaults,
    RandomOutages,
    SiteOutage,
)
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.events import DEFAULT_PRIORITY


def make_system(config, plan, policy="BNQ", seed=42):
    return DistributedDatabase(config, make_policy(policy), seed=seed, faults=plan)


@pytest.fixture
def busy_config(tiny_config):
    """A near-saturated variant: sites are almost always executing, so a
    crash reliably finds in-flight victims."""
    from dataclasses import replace

    return replace(
        tiny_config, site=replace(tiny_config.site, think_time=1.0)
    )


class TestInstallation:
    def test_install_none_is_noop(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        assert system.fault_injector is None
        system.install_faults(None)
        assert system.fault_injector is None

    def test_install_noop_plan_is_noop(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        system.install_faults(FaultPlan())
        assert system.fault_injector is None

    def test_double_install_rejected(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(0, 10.0, 5.0),))
        system = make_system(tiny_config, plan)
        assert system.fault_injector is not None
        with pytest.raises(RuntimeError, match="already"):
            system.install_faults(plan)

    def test_install_after_time_zero_rejected(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        system.sim.run(until=5.0)
        plan = FaultPlan(site_outages=(SiteOutage(0, 10.0, 5.0),))
        with pytest.raises(RuntimeError, match="time 0"):
            system.install_faults(plan)

    def test_plan_validated_against_topology(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(7, 10.0, 5.0),))
        from repro.faults.errors import FaultError

        with pytest.raises(FaultError):
            make_system(tiny_config, plan)


class TestSiteTransitions:
    def test_deterministic_outage_up_down_up(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(1, 10.0, 5.0),))
        system = make_system(tiny_config, plan, policy="LOCAL")
        injector = system.fault_injector
        assert injector.is_up(1)
        system.sim.run(until=12.0)
        assert not injector.is_up(1)
        assert injector.is_up(0) and injector.is_up(2)
        assert injector.available_sites == [0, 2]
        system.sim.run(until=16.0)
        assert injector.is_up(1)
        assert injector.available_sites == [0, 1, 2]
        assert injector.crashes == 1
        assert injector.recoveries == 1

    def test_overlapping_outages_compose_by_depth(self, tiny_config):
        plan = FaultPlan(
            site_outages=(SiteOutage(0, 10.0, 20.0), SiteOutage(0, 15.0, 5.0))
        )
        system = make_system(tiny_config, plan, policy="LOCAL")
        injector = system.fault_injector
        system.sim.run(until=22.0)
        # Inner outage ended at t=20, but the outer one holds until t=30.
        assert not injector.is_up(0)
        assert injector.crashes == 1  # one *transition*, not two
        system.sim.run(until=31.0)
        assert injector.is_up(0)
        assert injector.recoveries == 1

    def test_downtime_accounting(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(2, 100.0, 40.0),))
        system = make_system(tiny_config, plan, policy="LOCAL", seed=3)
        results = system.run(warmup=50.0, duration=200.0)
        availability = results.availability
        assert availability is not None
        assert availability.site_downtime[0] == 0.0
        assert availability.site_downtime[1] == 0.0
        assert availability.site_downtime[2] == pytest.approx(40.0)
        assert availability.crashes == 1
        assert availability.recoveries == 1

    def test_downtime_clipped_to_measurement_window(self, tiny_config):
        # Outage spans the warmup boundary at t=50: only the post-warmup
        # part (t=50..70) may count.
        plan = FaultPlan(site_outages=(SiteOutage(0, 30.0, 40.0),))
        system = make_system(tiny_config, plan, policy="LOCAL", seed=3)
        results = system.run(warmup=50.0, duration=100.0)
        assert results.availability.site_downtime[0] == pytest.approx(20.0)


class TestRandomOutagesDeterminism:
    def test_schedule_is_pure_function_of_seed_and_plan(self, tiny_config):
        plan = FaultPlan(random_outages=(RandomOutages(mtbf=300.0, mttr=20.0),))

        def downtimes(seed):
            system = make_system(tiny_config, plan, policy="LOCAL", seed=seed)
            results = system.run(warmup=100.0, duration=1500.0)
            return results.availability

        first = downtimes(11)
        second = downtimes(11)
        assert first == second
        assert first.crashes > 0  # the process really fired

    def test_different_seeds_different_schedules(self, tiny_config):
        plan = FaultPlan(random_outages=(RandomOutages(mtbf=300.0, mttr=20.0),))
        a = make_system(tiny_config, plan, policy="LOCAL", seed=1)
        b = make_system(tiny_config, plan, policy="LOCAL", seed=2)
        ra = a.run(warmup=100.0, duration=1500.0)
        rb = b.run(warmup=100.0, duration=1500.0)
        assert ra.availability.site_downtime != rb.availability.site_downtime

    def test_fault_streams_do_not_perturb_workload(self, tiny_config):
        """Adding a fault process that never fires leaves workload intact.

        An MTBF far beyond the horizon draws its (one) up-time from the
        dedicated ``faults.outage0.s*`` streams; if the injector leaked
        randomness into workload streams, results would shift.
        """
        quiet = FaultPlan(
            random_outages=(RandomOutages(mtbf=10_000_000.0, mttr=1.0),)
        )
        baseline = DistributedDatabase(
            tiny_config, make_policy("BNQ"), seed=9
        ).run(50.0, 400.0)
        faulted = make_system(tiny_config, quiet, policy="BNQ", seed=9).run(
            50.0, 400.0
        )
        assert faulted.mean_waiting_time == baseline.mean_waiting_time
        assert faulted.completions == baseline.completions


class TestLoadBoardOutage:
    def test_dark_view_frozen_and_restored(self, tiny_config):
        plan = FaultPlan(loadboard_outages=(LoadBoardOutage(20.0, 10.0),))
        system = make_system(tiny_config, plan, policy="BNQ", seed=5)
        injector = system.fault_injector
        assert injector.dark_view is None
        system.sim.run(until=25.0)
        frozen = injector.dark_view
        assert frozen is not None
        # The frozen snapshot serves policies through the view.
        assert system.view_for(0).loads is frozen
        system.sim.run(until=31.0)
        assert injector.dark_view is None

    def test_overlapping_dark_windows(self, tiny_config):
        plan = FaultPlan(
            loadboard_outages=(
                LoadBoardOutage(10.0, 20.0),
                LoadBoardOutage(15.0, 5.0),
            )
        )
        system = make_system(tiny_config, plan, policy="LOCAL", seed=5)
        injector = system.fault_injector
        system.sim.run(until=22.0)
        assert injector.dark_view is not None  # outer window still open
        system.sim.run(until=31.0)
        assert injector.dark_view is None


class TestDegradedLifeCycle:
    def test_outage_aborts_and_retries_queries(self, busy_config):
        # A long mid-run outage at one near-saturated site: its in-flight
        # queries are aborted, retried elsewhere, and complete.
        plan = FaultPlan(
            site_outages=(SiteOutage(0, 100.0, 60.0),),
            max_retries=50,
            retry_backoff=5.0,
        )
        system = make_system(busy_config, plan, policy="BNQ", seed=7)
        results = system.run(warmup=50.0, duration=400.0)
        availability = results.availability
        assert availability.queries_aborted > 0
        assert availability.queries_retried > 0
        assert availability.queries_lost == 0  # generous retry budget
        assert availability.degraded_completions > 0
        assert results.completions > 0

    def test_retry_budget_exhaustion_loses_queries(self, busy_config):
        # All three sites down for a long stretch with a zero retry
        # budget: every aborted query is lost.
        plan = FaultPlan(
            site_outages=tuple(
                SiteOutage(s, 100.0, 200.0) for s in range(3)
            ),
            max_retries=0,
        )
        system = make_system(busy_config, plan, policy="BNQ", seed=7)
        results = system.run(warmup=50.0, duration=400.0)
        availability = results.availability
        assert availability.queries_aborted > 0
        assert availability.queries_lost >= availability.queries_aborted
        assert availability.queries_retried == 0

    def test_message_faults_count_drops(self, tiny_config):
        plan = FaultPlan(
            messages=MessageFaults(loss_prob=0.3, retransmit_timeout=1.0)
        )
        # BNQ ships work between sites, so transfers (and drops) happen.
        system = make_system(tiny_config, plan, policy="BNQ", seed=13)
        results = system.run(warmup=50.0, duration=600.0)
        availability = results.availability
        assert availability.messages_dropped > 0
        assert availability.degraded_completions > 0
        assert (
            availability.degraded_completions
            + (results.completions - availability.degraded_completions)
            == results.completions
        )

    def test_clean_vs_degraded_response_split(self, tiny_config):
        plan = FaultPlan(
            messages=MessageFaults(loss_prob=0.2, retransmit_timeout=5.0)
        )
        system = make_system(tiny_config, plan, policy="BNQ", seed=13)
        results = system.run(warmup=50.0, duration=600.0)
        availability = results.availability
        assert availability.clean_response_time > 0.0
        if availability.degraded_completions:
            # Retransmission timeouts make degraded queries slower on
            # average for this workload.
            assert availability.degraded_response_time > 0.0


class TestSameTimeTieBreak:
    """Crash beats completion on the same timestamp (the pinned tie-break)."""

    def test_fault_priority_is_below_default(self):
        assert FAULT_PRIORITY < DEFAULT_PRIORITY

    def test_crash_fires_first_and_retracts_completion(self):
        sim = Simulator(seed=0)
        order = []
        completion = sim.schedule_at(10.0, lambda: order.append("complete"))

        def crash():
            order.append("crash")
            sim.cancel(completion)  # loser retraction: documented no-op path

        sim.schedule_at(10.0, crash, priority=FAULT_PRIORITY)
        sim.run(until=20.0)
        assert order == ["crash"]

    def test_completion_scheduled_first_still_loses(self):
        # Insertion order must not matter: priority alone decides.
        sim = Simulator(seed=0)
        order = []
        for _ in range(3):  # a few same-time completions
            event = sim.schedule_at(10.0, lambda: order.append("complete"))
        crash_event = sim.schedule_at(
            10.0, lambda: order.append("crash"), priority=FAULT_PRIORITY
        )
        del event, crash_event
        sim.run(until=20.0)
        assert order[0] == "crash"

    def test_cancel_already_fired_completion_is_noop(self):
        sim = Simulator(seed=0)
        fired = []
        completion = sim.schedule_at(5.0, lambda: fired.append(True))
        sim.run(until=6.0)
        assert fired
        sim.cancel(completion)  # must not raise, must not corrupt the queue
        sim.schedule_at(7.0, lambda: fired.append(True))
        sim.run(until=8.0)
        assert len(fired) == 2

    def test_crash_at_query_completion_time_aborts_it(self, tiny_config):
        """Model-level tie-break: a crash landing exactly on a completion
        timestamp aborts the query instead of letting it complete.

        We find a completion time from a dry run, then rerun with a crash
        scheduled at exactly that timestamp and check the abort counter.
        """
        probe = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=21)
        finish_times = []
        original_record = probe.metrics.record

        def spy(query):
            finish_times.append((query.finished_at, query.execution_site))
            original_record(query)

        probe.metrics.record = spy
        probe.sim.run(until=300.0)
        assert finish_times
        # Pick a completion comfortably inside the window.
        at, site = next(
            (t, s) for t, s in finish_times if t is not None and t > 50.0
        )
        plan = FaultPlan(
            site_outages=(SiteOutage(site, at, 30.0),),
            max_retries=20,
            retry_backoff=2.0,
        )
        system = make_system(tiny_config, plan, policy="LOCAL", seed=21)
        system.sim.run(until=300.0)
        assert system.fault_injector.queries_aborted > 0


class TestResetStatistics:
    def test_warmup_reset_truncates_availability(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(0, 10.0, 5.0),))
        system = make_system(tiny_config, plan, policy="LOCAL", seed=3)
        results = system.run(warmup=50.0, duration=100.0)
        availability = results.availability
        # The whole outage happened inside warmup: nothing may survive.
        assert availability.crashes == 0
        assert availability.recoveries == 0
        assert availability.total_downtime == pytest.approx(0.0)


class TestRegistrationBookkeeping:
    def test_end_execution_is_idempotent(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(0, 1e9, 1.0),))
        system = make_system(tiny_config, plan, policy="LOCAL")
        injector = system.fault_injector

        class FakeProcess:
            pass

        process = FakeProcess()
        injector.begin_execution(0, process)
        injector.end_execution(0, process)
        injector.end_execution(0, process)  # second call: silently ignored
        assert injector._executing[0] == []

    def test_injector_is_a_fault_injector(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(0, 10.0, 5.0),))
        system = make_system(tiny_config, plan)
        assert isinstance(system.fault_injector, FaultInjector)
        assert system.fault_injector.plan == plan
