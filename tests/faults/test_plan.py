"""FaultPlan and friends: validation, no-op detection, backoff math."""

import pytest

from repro.faults.errors import FaultError
from repro.faults.plan import (
    FaultPlan,
    LoadBoardOutage,
    MessageFaults,
    RandomOutages,
    SiteOutage,
    site_outage_schedule,
)


class TestSiteOutage:
    def test_valid(self):
        outage = SiteOutage(site=1, at=100.0, duration=50.0)
        assert outage.site == 1
        assert outage.at == 100.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(site=-1, at=0.0, duration=1.0),
            dict(site=0, at=-1.0, duration=1.0),
            dict(site=0, at=0.0, duration=0.0),
            dict(site=0, at=0.0, duration=-5.0),
            dict(site=0, at=float("inf"), duration=1.0),
            dict(site=0, at=0.0, duration=float("nan")),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(FaultError):
            SiteOutage(**kwargs)


class TestRandomOutages:
    def test_valid_all_sites(self):
        spec = RandomOutages(mtbf=1000.0, mttr=50.0)
        assert spec.site is None

    def test_valid_single_site(self):
        assert RandomOutages(mtbf=1.0, mttr=1.0, site=2).site == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mtbf=0.0, mttr=1.0),
            dict(mtbf=1.0, mttr=0.0),
            dict(mtbf=-1.0, mttr=1.0),
            dict(mtbf=float("nan"), mttr=1.0),
            dict(mtbf=1.0, mttr=1.0, site=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(FaultError):
            RandomOutages(**kwargs)


class TestMessageFaults:
    def test_defaults_are_noop(self):
        assert MessageFaults().is_noop

    def test_loss_is_not_noop(self):
        assert not MessageFaults(loss_prob=0.1).is_noop

    def test_delay_is_not_noop(self):
        assert not MessageFaults(extra_delay=0.5).is_noop

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_prob=1.0),  # must stay < 1 or retransmission never ends
            dict(loss_prob=-0.1),
            dict(extra_delay=-1.0),
            dict(retransmit_timeout=0.0),
            dict(max_retransmits=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(FaultError):
            MessageFaults(**kwargs)


class TestLoadBoardOutage:
    def test_valid(self):
        assert LoadBoardOutage(at=10.0, duration=5.0).duration == 5.0

    @pytest.mark.parametrize(
        "kwargs", [dict(at=-1.0, duration=1.0), dict(at=0.0, duration=0.0)]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(FaultError):
            LoadBoardOutage(**kwargs)


class TestFaultPlan:
    def test_default_is_noop(self):
        assert FaultPlan().is_noop

    def test_noop_message_faults_still_noop(self):
        assert FaultPlan(messages=MessageFaults()).is_noop

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(site_outages=(SiteOutage(0, 10.0, 5.0),)),
            dict(random_outages=(RandomOutages(mtbf=100.0, mttr=5.0),)),
            dict(messages=MessageFaults(loss_prob=0.05)),
            dict(loadboard_outages=(LoadBoardOutage(10.0, 5.0),)),
        ],
    )
    def test_any_fault_is_not_noop(self, kwargs):
        assert not FaultPlan(**kwargs).is_noop

    def test_hashable_and_comparable(self):
        a = FaultPlan(site_outages=(SiteOutage(0, 10.0, 5.0),))
        b = FaultPlan(site_outages=(SiteOutage(0, 10.0, 5.0),))
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultPlan()

    def test_sequences_normalized_to_tuples(self):
        plan = FaultPlan(site_outages=[SiteOutage(0, 10.0, 5.0)])
        assert isinstance(plan.site_outages, tuple)
        assert hash(plan)  # still hashable after normalization

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(retry_backoff=0.0),
            dict(backoff_factor=0.5),
            dict(retry_backoff=float("inf")),
        ],
    )
    def test_invalid_retry_settings(self, kwargs):
        with pytest.raises(FaultError):
            FaultPlan(**kwargs)

    def test_backoff_is_exponential(self):
        plan = FaultPlan(retry_backoff=2.0, backoff_factor=3.0)
        assert plan.backoff(1) == 2.0
        assert plan.backoff(2) == 6.0
        assert plan.backoff(3) == 18.0

    def test_backoff_rejects_attempt_zero(self):
        with pytest.raises(FaultError):
            FaultPlan().backoff(0)

    def test_validate_for_accepts_in_range_sites(self):
        plan = FaultPlan(
            site_outages=(SiteOutage(2, 10.0, 5.0),),
            random_outages=(RandomOutages(mtbf=100.0, mttr=5.0, site=1),),
        )
        plan.validate_for(3)  # must not raise

    def test_validate_for_rejects_unknown_site_outage(self):
        plan = FaultPlan(site_outages=(SiteOutage(5, 10.0, 5.0),))
        with pytest.raises(FaultError, match="site 5"):
            plan.validate_for(3)

    def test_validate_for_rejects_unknown_random_outage_site(self):
        plan = FaultPlan(random_outages=(RandomOutages(100.0, 5.0, site=9),))
        with pytest.raises(FaultError, match="site 9"):
            plan.validate_for(3)


class TestSiteOutageSchedule:
    def test_edges_sorted_and_signed(self):
        outages = (SiteOutage(1, 20.0, 10.0), SiteOutage(0, 5.0, 30.0))
        edges = site_outage_schedule(outages)
        assert edges == (
            (5.0, 0, +1),
            (20.0, 1, +1),
            (30.0, 1, -1),
            (35.0, 0, -1),
        )

    def test_overlapping_outages_deterministic_order(self):
        outages = (SiteOutage(0, 10.0, 5.0), SiteOutage(0, 10.0, 20.0))
        edges = site_outage_schedule(outages)
        assert edges[0] == (10.0, 0, +1)
        assert edges[1] == (10.0, 0, +1)
