"""SystemView and MaskedLoadView: what policies may (and may not) see."""

import pytest

from repro.faults.errors import NoAvailableSiteError
from repro.faults.plan import FaultPlan, SiteOutage
from repro.model.system import DistributedDatabase
from repro.model.view import MaskedLoadView, SystemView
from repro.policies.registry import make_policy


def _query(config, home_site=0):
    from repro.model.query import make_query

    return make_query(
        config, 0, home_site=home_site, estimated_reads=5.0, created_at=0.0, qid=1
    )


def crashed_system(tiny_config, down_sites, *, policy="LOCAL", until=20.0):
    """A system run just past t=10 with *down_sites* crashed."""
    plan = FaultPlan(
        site_outages=tuple(SiteOutage(s, 10.0, 1e6) for s in down_sites),
        max_retries=0,
    )
    system = DistributedDatabase(
        tiny_config, make_policy(policy), seed=4, faults=plan
    )
    system.sim.run(until=until)
    return system


class FakeLoads:
    """A deterministic LoadView stand-in."""

    def __init__(self, counts):
        self.counts = list(counts)

    def num_queries(self, site):
        return self.counts[site]

    def num_io_queries(self, site):
        return self.counts[site]

    def num_cpu_queries(self, site):
        return 0

    def query_distribution(self):
        return list(self.counts)


class TestMaskedLoadView:
    def test_down_sites_read_zero(self):
        masked = MaskedLoadView(FakeLoads([5, 7, 3]), [True, False, True])
        assert masked.num_queries(0) == 5
        assert masked.num_queries(1) == 0
        assert masked.num_queries(2) == 3
        assert masked.num_io_queries(1) == 0
        assert masked.num_cpu_queries(1) == 0

    def test_distribution_masks_in_place(self):
        masked = MaskedLoadView(FakeLoads([5, 7, 3]), [False, True, True])
        assert masked.query_distribution() == [0, 7, 3]


class TestSystemViewWithoutFaults:
    def test_passthrough_when_no_injector(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=4)
        view = system.view_for(1)
        assert view.injector is None
        assert view.arrival_site == 1
        assert view.num_sites == 3
        assert view.is_available(0) and view.is_available(2)
        # Live board, no masking wrapper.
        assert view.loads is system.load_view

    def test_candidates_unfiltered(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=4)
        view = system.view_for(0)
        query = _query(tiny_config)
        assert view.candidates(query) == list(system.candidate_sites(query))

    def test_rng_is_named_stream(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=4)
        view = system.view_for(0)
        assert view.rng("policy.random") is system.sim.rng.stream("policy.random")

    def test_config_and_estimates_exposed(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=4)
        view = system.view_for(0)
        assert view.config is system.config
        query = _query(tiny_config)
        assert view.estimated_transfer_time(query) == pytest.approx(
            system.estimated_transfer_time(query)
        )
        assert view.estimated_return_time(query) == pytest.approx(
            system.estimated_return_time(query)
        )
        assert view.load_info_age() == system.load_info_age()


class TestSystemViewUnderFaults:
    def test_down_site_not_available(self, tiny_config):
        system = crashed_system(tiny_config, [1])
        view = system.view_for(0)
        assert view.is_available(0)
        assert not view.is_available(1)
        assert view.is_available(2)

    def test_candidates_filter_down_sites(self, tiny_config):
        system = crashed_system(tiny_config, [1], policy="BNQ")
        query = _query(tiny_config)
        view = system.view_for(0)
        assert 1 not in view.candidates(query)

    def test_all_down_raises_no_available_site(self, tiny_config):
        system = crashed_system(tiny_config, [0, 1, 2])
        query = _query(tiny_config)
        view = system.view_for(0)
        with pytest.raises(NoAvailableSiteError):
            view.candidates(query)

    def test_loads_masked_for_down_sites(self, tiny_config):
        system = crashed_system(tiny_config, [1], policy="BNQ")
        view = system.view_for(0)
        loads = view.loads
        assert isinstance(loads, MaskedLoadView)
        assert loads.num_queries(1) == 0

    def test_loads_unwrapped_when_all_up(self, tiny_config):
        # Far-future outage: injector installed, nothing down yet.
        plan = FaultPlan(site_outages=(SiteOutage(0, 1e9, 1.0),))
        system = DistributedDatabase(
            tiny_config, make_policy("BNQ"), seed=4, faults=plan
        )
        view = system.view_for(0)
        assert not isinstance(view.loads, MaskedLoadView)

    def test_stub_system_works(self):
        """Attributes resolve lazily: a stub with only config works."""

        class StubConfig:
            num_sites = 4

        class StubSystem:
            config = StubConfig()

        view = SystemView(StubSystem(), arrival_site=2)
        assert view.num_sites == 4
        assert view.arrival_site == 2
        assert view.is_available(3)
