"""The golden-trace corpus: recorded digests that license kernel refactors."""
