"""Definition and runner for the golden-trace corpus.

The corpus is a small matrix of (seed x policy x fault-plan) runs whose
telemetry JSONL, timeline CSV, kernel trace stream, and ``SystemResults``
JSON were digest-recorded from the **seed kernel** (the straightforward
heap + coroutine event loop, before the hot-path overhaul).  The suite in
``tests/sim/test_golden_equivalence.py`` replays every case and asserts
byte-identity, which makes engine refactors mechanically verifiable: any
change that perturbs event ordering, floating-point arithmetic, RNG
consumption, or telemetry emission fails loudly.

Digests are **never** regenerated as part of a refactoring PR.  The only
sanctioned path is ``tools/regen_golden.py --i-know-this-changes-behavior``
for PRs whose whole point is a behaviour change (and whose review covers
the new recordings).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.parallel import ReplicationTask, run_tasks
from repro.faults.plan import (
    FaultPlan,
    LoadBoardOutage,
    MessageFaults,
    RandomOutages,
    SiteOutage,
)
from repro.model.config import (
    NetworkSpec,
    QueryClassSpec,
    SiteSpec,
    SystemConfig,
)
from repro.model.serialization import results_to_dict
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.runner import RunSpec, run
from repro.telemetry.events import TraceMessage
from repro.telemetry.exporters import events_to_jsonl, timeline_to_csv
from repro.telemetry.session import TelemetryConfig

GOLDEN_DIR = Path(__file__).resolve().parent
MANIFEST_PATH = GOLDEN_DIR / "manifest.json"

#: Bump when the corpus *shape* changes (cases added/removed); the digests
#: themselves only ever change through tools/regen_golden.py.
CORPUS_FORMAT = 1


def golden_config() -> SystemConfig:
    """The corpus system: 3 sites, 2 disks each, a CPU- and an IO-class.

    Small enough that the whole corpus replays in a few seconds, rich
    enough to exercise every kernel path (PS + FCFS servers, ring
    messaging, load-board broadcasts, warmup truncation).
    """
    return SystemConfig(
        num_sites=3,
        site=SiteSpec(
            num_disks=2, disk_time=1.0, disk_time_dev=0.2, mpl=4, think_time=50.0
        ),
        classes=(
            QueryClassSpec("io", page_cpu_time=0.05, num_reads=5.0),
            QueryClassSpec("cpu", page_cpu_time=1.0, num_reads=5.0),
        ),
        class_probs=(0.5, 0.5),
        network=NetworkSpec(msg_length=1.0),
    )


def golden_fault_plan() -> FaultPlan:
    """The corpus chaos plan: every fault kind at once, deterministically."""
    return FaultPlan(
        site_outages=(SiteOutage(site=1, at=800.0, duration=300.0),),
        random_outages=(RandomOutages(mtbf=2500.0, mttr=120.0, site=2),),
        messages=MessageFaults(loss_prob=0.05, extra_delay=0.2),
        loadboard_outages=(LoadBoardOutage(at=1500.0, duration=250.0),),
        max_retries=3,
    )


@dataclass(frozen=True)
class GoldenCase:
    """One recorded run of the corpus matrix."""

    name: str
    policy: str
    seed: int
    warmup: float = 300.0
    duration: float = 2500.0
    faulted: bool = False


#: The recorded matrix.  Order is part of the corpus format.
CASES: Tuple[GoldenCase, ...] = (
    GoldenCase(name="lert_seed1", policy="LERT", seed=1),
    GoldenCase(name="bnqrd_seed2", policy="BNQRD", seed=2),
    GoldenCase(name="local_seed3", policy="LOCAL", seed=3),
    GoldenCase(name="random_faulted_seed5", policy="RANDOM", seed=5, faulted=True),
)

#: The --jobs equivalence batch: replayed serially and with two workers;
#: both orderings must produce byte-identical serialized results.
JOBS_BATCH_POLICIES: Tuple[str, ...] = ("LERT", "BNQ")
JOBS_BATCH_SEEDS: Tuple[int, ...] = (11, 12)
JOBS_WARMUP = 100.0
JOBS_DURATION = 800.0

#: The kernel-trace case: a short run with an explicit TraceMessage
#: subscriber, pinning the engine's per-event trace emission (the guard
#: the hot-path overhaul hoists out of ``step()``).
TRACE_POLICY = "LERT"
TRACE_SEED = 1
TRACE_WARMUP = 50.0
TRACE_DURATION = 400.0


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_json(payload: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators (digest-stable)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_case(case: GoldenCase, queue: str = "heap") -> Dict[str, Any]:
    """Replay one corpus case; returns its digests and full results dict.

    ``queue`` selects the kernel's future-event-list implementation; every
    implementation must reproduce the same recorded bytes.
    """
    spec = RunSpec(
        warmup=case.warmup,
        duration=case.duration,
        seed=case.seed,
        telemetry=TelemetryConfig(events=True, sample_interval=100.0),
        faults=golden_fault_plan() if case.faulted else None,
    )
    if queue == "heap":
        report = run(golden_config(), case.policy, spec)
    else:
        # Exercised post-overhaul: alternative event-queue implementations
        # must replay the digests recorded from the default heap kernel.
        from repro.runner import execute

        system = DistributedDatabase(
            golden_config(),
            make_policy(case.policy),
            seed=case.seed,
            queue=queue,
        )
        report = execute(system, spec)
    results = results_to_dict(report.results)
    return {
        "results": results,
        "results_sha256": _sha256(canonical_json(results)),
        "events_sha256": _sha256(events_to_jsonl(report.events)),
        "timeline_sha256": _sha256(timeline_to_csv(report.timeline)),
    }


def run_trace_case(queue: str = "heap") -> Dict[str, Any]:
    """Replay the kernel-trace case; returns the trace-stream digest."""
    kwargs: Dict[str, Any] = {} if queue == "heap" else {"queue": queue}
    system = DistributedDatabase(
        golden_config(), make_policy(TRACE_POLICY), seed=TRACE_SEED, **kwargs
    )
    digest = hashlib.sha256()
    count = 0

    def record(event: Any) -> None:
        nonlocal count
        count += 1
        digest.update(f"{event.time!r}|{event.label}\n".encode("utf-8"))

    system.sim.bus.subscribe(TraceMessage, record)
    system.run(TRACE_WARMUP, TRACE_DURATION)
    return {"trace_sha256": digest.hexdigest(), "trace_messages": count}


def jobs_batch_tasks() -> List[ReplicationTask]:
    """The --jobs equivalence batch (includes one faulted task)."""
    config = golden_config()
    tasks = [
        ReplicationTask(
            config=config,
            policy=policy,
            seed=seed,
            warmup=JOBS_WARMUP,
            duration=JOBS_DURATION,
        )
        for policy in JOBS_BATCH_POLICIES
        for seed in JOBS_BATCH_SEEDS
    ]
    tasks.append(
        ReplicationTask(
            config=config,
            policy="RANDOM",
            seed=13,
            warmup=JOBS_WARMUP,
            duration=JOBS_DURATION,
            faults=golden_fault_plan(),
        )
    )
    return tasks


def run_jobs_batch(jobs: int) -> str:
    """Run the equivalence batch with *jobs* workers; returns its digest."""
    results = run_tasks(jobs_batch_tasks(), jobs=jobs)
    payload = [results_to_dict(result) for result in results]
    return _sha256(canonical_json(payload))


def build_manifest() -> Dict[str, Any]:
    """Run the whole corpus and assemble a manifest (regeneration path)."""
    cases: Dict[str, Dict[str, Any]] = {}
    for case in CASES:
        outcome = run_case(case)
        cases[case.name] = {
            "results_sha256": outcome["results_sha256"],
            "events_sha256": outcome["events_sha256"],
            "timeline_sha256": outcome["timeline_sha256"],
        }
        results_path = GOLDEN_DIR / f"results_{case.name}.json"
        results_path.write_text(
            canonical_json(outcome["results"]) + "\n", encoding="utf-8"
        )
    trace = run_trace_case()
    return {
        "format": CORPUS_FORMAT,
        "recorded_from": "seed kernel (pre hot-path overhaul)",
        "cases": cases,
        "trace": trace,
        "jobs": {"results_sha256": run_jobs_batch(jobs=1)},
    }


def load_manifest() -> Dict[str, Any]:
    """The recorded manifest (raises if the corpus was never generated)."""
    with MANIFEST_PATH.open(encoding="utf-8") as handle:
        manifest: Dict[str, Any] = json.load(handle)
    return manifest


def load_recorded_results(name: str) -> Dict[str, Any]:
    """The recorded full ``SystemResults`` dict for one case."""
    path = GOLDEN_DIR / f"results_{name}.json"
    with path.open(encoding="utf-8") as handle:
        results: Dict[str, Any] = json.load(handle)
    return results
