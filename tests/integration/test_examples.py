"""The example scripts must at least import and expose a main()."""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_defines_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), f"{path.name} has no main()"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_docstring(self, path):
        module = _load(path)
        assert module.__doc__ and len(module.__doc__) > 40
