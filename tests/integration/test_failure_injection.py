"""Failure injection: the kernel and model must fail loudly, not corrupt.

A simulation that swallows model errors produces silently wrong science.
These tests inject faults at every layer and verify they surface as the
original exceptions (with the simulator left in a diagnosable state), and
that recoverable interruptions (the migration-style interrupt) do not
corrupt resource accounting.
"""

import pytest

from repro.model.config import paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.base import AllocationPolicy
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.errors import ProcessError
from repro.sim.process import Hold
from repro.sim.resources import FCFSServer, PSServer


class ExplodingPolicy(AllocationPolicy):
    """Raises after a fixed number of decisions."""

    name = "EXPLODING"

    def __init__(self, after: int) -> None:
        super().__init__()
        self.after = after
        self.decisions = 0

    def select_site(self, query, arrival_site):
        self.decisions += 1
        if self.decisions > self.after:
            raise RuntimeError("policy blew up")
        return arrival_site


class TestModelFaults:
    def test_policy_exception_propagates(self, tiny_config):
        system = DistributedDatabase(tiny_config, ExplodingPolicy(after=5), seed=1)
        with pytest.raises(RuntimeError, match="policy blew up"):
            system.run(warmup=0.0, duration=500.0)

    def test_clock_remains_valid_after_fault(self, tiny_config):
        system = DistributedDatabase(tiny_config, ExplodingPolicy(after=5), seed=1)
        with pytest.raises(RuntimeError):
            system.run(warmup=0.0, duration=500.0)
        # The failure happened mid-run: time advanced but never beyond the
        # horizon, and the simulator can still report state.
        assert 0.0 <= system.sim.now <= 500.0
        assert system.sim.pending_events >= 0

    def test_ring_delivery_exception_propagates(self, tiny_config):
        from repro.model.ring import Message, TokenRing

        sim = Simulator()
        ring = TokenRing(sim, 2)

        def bad_deliver():
            raise ValueError("corrupt message")

        ring.send(Message(0, 1, 1.0, deliver=bad_deliver))
        with pytest.raises(ValueError, match="corrupt message"):
            sim.run()


class TestKernelFaults:
    def test_exception_in_service_completion_keeps_server_consistent(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        state = {"fail": True}

        def job_one():
            yield server.service(1.0)
            if state["fail"]:
                raise RuntimeError("post-service failure")

        def job_two():
            yield Hold(0.5)
            yield server.service(1.0)

        sim.launch(job_one())
        sim.launch(job_two())
        with pytest.raises(RuntimeError):
            sim.run()
        # job_one's completion already freed the server before the model
        # code raised; job_two can still be served after the failure.
        state["fail"] = False
        sim.run()
        assert server.completions == 2

    def test_interrupt_during_hold_releases_nothing(self):
        sim = Simulator()
        cpu = PSServer(sim)
        finished = []

        def victim():
            try:
                yield Hold(100.0)
            except TimeoutError:
                pass
            yield cpu.service(1.0)
            finished.append(sim.now)

        process = sim.launch(victim())
        sim.schedule(5.0, lambda: process.interrupt(TimeoutError()))
        sim.run()
        assert finished == [pytest.approx(6.0)]
        assert cpu.completions == 1

    def test_second_interrupt_supersedes_first(self):
        # Interrupting an already-interrupted (but not yet resumed) process
        # replaces the pending exception — the latest interrupt wins.
        sim = Simulator()
        caught = []

        def sleeper():
            try:
                yield Hold(100.0)
            except RuntimeError as exc:
                caught.append(str(exc))

        process = sim.launch(sleeper())
        sim.run(max_events=1)
        process.interrupt(RuntimeError("one"))
        process.interrupt(RuntimeError("two"))
        sim.run()
        assert caught == ["two"]

    def test_interrupt_terminated_rejected(self):
        sim = Simulator()

        def quick():
            yield Hold(1.0)

        process = sim.launch(quick())
        sim.run()
        with pytest.raises(ProcessError):
            process.interrupt(RuntimeError("too late"))


class TestDeterministicRecovery:
    def test_rerun_after_fault_is_clean(self, tiny_config):
        # A crashed run must not poison a subsequent fresh system (no
        # global state leaks between Simulator instances).
        broken = DistributedDatabase(tiny_config, ExplodingPolicy(after=3), seed=9)
        with pytest.raises(RuntimeError):
            broken.run(warmup=0.0, duration=300.0)
        clean = DistributedDatabase(tiny_config, make_policy("LERT"), seed=9)
        results = clean.run(warmup=50.0, duration=300.0)
        assert results.completions > 0
