"""End-to-end tests for the ``python -m repro`` single-run CLI."""

import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _env_with_src() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def invoke(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )


class TestMainCli:
    def test_plain_run_prints_results(self):
        proc = invoke(
            "--policy", "BNQRD", "--seed", "3", "--warmup", "100",
            "--duration", "400",
        )
        assert proc.returncode == 0, proc.stderr
        assert "BNQRD" in proc.stdout

    def test_trace_flags_write_valid_artifacts(self, tmp_path):
        trace = tmp_path / "trace.json"
        decisions = tmp_path / "decisions.jsonl"
        proc = invoke(
            "--policy", "BNQRD", "--seed", "3", "--warmup", "100",
            "--duration", "400",
            "--trace-spans", str(trace),
            "--decision-audit", str(decisions),
        )
        assert proc.returncode == 0, proc.stderr
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert document["traceEvents"]
        lines = decisions.read_text(encoding="utf-8").strip().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert "regret" in record

    def test_trace_flags_are_deterministic(self, tmp_path):
        outputs = []
        for tag in ("a", "b"):
            trace = tmp_path / f"trace_{tag}.json"
            decisions = tmp_path / f"dec_{tag}.jsonl"
            proc = invoke(
                "--seed", "3", "--warmup", "50", "--duration", "300",
                "--trace-spans", str(trace),
                "--decision-audit", str(decisions),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(
                (trace.read_bytes(), decisions.read_bytes())
            )
        assert outputs[0] == outputs[1]

    def test_timeline_requires_sample_interval(self, tmp_path):
        proc = invoke(
            "--warmup", "10", "--duration", "50",
            "--timeline", str(tmp_path / "t.csv"),
        )
        assert proc.returncode != 0
        assert "sample-interval" in proc.stderr

    def test_profiler_module_smoke(self):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.telemetry.profile",
                "--warmup", "20", "--duration", "100",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=_env_with_src(),
        )
        assert proc.returncode == 0, proc.stderr
        assert "dispatch" in proc.stdout
