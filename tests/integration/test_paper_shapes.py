"""Integration tests: the paper's headline findings at reduced scale.

These run the full system (simulator + policies + ring + metrics) long
enough for the qualitative results to be stable under the fixed seed.
"""

import pytest

from repro.experiments.common import simulate
from repro.experiments.runconfig import RunSettings
from repro.model.config import paper_defaults

SETTINGS = RunSettings(warmup=1000.0, duration=5000.0, replications=1, base_seed=424242)


@pytest.fixture(scope="module")
def default_runs():
    config = paper_defaults()
    return {
        name: simulate(config, name, SETTINGS)
        for name in ("LOCAL", "BNQ", "BNQRD", "LERT")
    }


@pytest.mark.slow
class TestHeadlineOrdering:
    def test_dynamic_allocation_beats_local(self, default_runs):
        w_local = default_runs["LOCAL"].mean_waiting_time
        for policy in ("BNQ", "BNQRD", "LERT"):
            assert default_runs[policy].mean_waiting_time < w_local

    def test_information_beats_count_balancing(self, default_runs):
        w_bnq = default_runs["BNQ"].mean_waiting_time
        assert default_runs["BNQRD"].mean_waiting_time < w_bnq
        assert default_runs["LERT"].mean_waiting_time < w_bnq

    def test_improvement_magnitude_in_papers_band(self, default_runs):
        # Paper Table 8 @ think 350: 38-44% improvement over LOCAL.
        w_local = default_runs["LOCAL"].mean_waiting_time
        w_lert = default_runs["LERT"].mean_waiting_time
        improvement = (w_local - w_lert) / w_local
        assert 0.25 < improvement < 0.60

    def test_local_waiting_magnitude(self, default_runs):
        # Paper: W_LOCAL = 22.71 at these settings; generous band.
        assert 14.0 < default_runs["LOCAL"].mean_waiting_time < 32.0

    def test_utilizations_match_paper_rho(self, default_runs):
        # Paper: rho_c = 0.53 at think 350.
        assert default_runs["LOCAL"].cpu_utilization == pytest.approx(0.53, abs=0.08)

    def test_subnet_utilization_at_six_sites(self, default_runs):
        # Paper Table 11: ~36-37% at 6 sites.
        assert 0.2 < default_runs["LERT"].subnet_utilization < 0.5

    def test_dynamic_allocation_improves_fairness(self, default_runs):
        assert abs(default_runs["LERT"].fairness) < abs(
            default_runs["LOCAL"].fairness
        ) + 0.02


@pytest.mark.slow
class TestCommonRandomNumbers:
    def test_policies_face_identical_workloads(self):
        # With CRN, the terminals generate the same queries regardless of
        # policy; verify via the total realized service demand of the
        # queries each policy completed being extremely close.
        config = paper_defaults()
        settings = RunSettings(warmup=500.0, duration=2000.0, base_seed=31)
        runs = {
            name: simulate(config, name, settings) for name in ("BNQ", "LERT")
        }
        completions = [r.completions for r in runs.values()]
        assert abs(completions[0] - completions[1]) < 0.1 * max(completions)
