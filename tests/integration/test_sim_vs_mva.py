"""Cross-validation: the DES kernel against exact MVA.

The crown-jewel validation of the whole substrate: a closed queueing
network simulated with the process-oriented kernel must agree with the
exact Mean Value Analysis solution of the same network.  Any systematic
disagreement would invalidate either the simulator or the solver — the
experiments lean on both.
"""

import pytest

from repro.queueing import closed_network, fcfs, multiserver, ps, solve_mva
from repro.sim import FCFSServer, Hold, PSServer, Simulator


def _simulate_two_station_site(
    cpu_means, populations, horizon=12000.0, warmup=1000.0, seed=11
):
    """Simulate queries cycling disk (2 per-disk queues) -> CPU forever.

    Matches the §3 site model.  Customers cycle endlessly and the run stops
    at a fixed time horizon, so the population stays constant throughout —
    a customer completing a fixed cycle quota instead would leave the
    stragglers running contention-free and bias their waits low.
    Waits observed during the warmup are discarded.
    """
    sim = Simulator(seed=seed)
    disks = [FCFSServer(sim, f"disk{d}") for d in range(2)]
    cpu = PSServer(sim, "cpu")
    waits = {k: [] for k in range(len(populations))}

    def customer(k, index):
        rng = sim.rng.stream(f"c{k}.{index}")
        while True:
            start = sim.now
            service = 0.0
            disk_time = rng.expovariate(1.0)  # mean 1.0 per access
            disk = disks[rng.randrange(2)]
            yield disk.service(disk_time)
            service += disk_time
            cpu_time = rng.expovariate(1.0 / cpu_means[k])
            yield cpu.service(cpu_time)
            service += cpu_time
            if sim.now > warmup:
                waits[k].append((sim.now - start) - service)

    for k, count in enumerate(populations):
        for index in range(count):
            sim.launch(customer(k, index))
    sim.run(until=horizon)
    return {k: sum(w) / len(w) for k, w in waits.items() if w}


@pytest.mark.slow
class TestSiteModelAgreement:
    @pytest.mark.parametrize(
        "populations",
        [(2, 0), (1, 1), (2, 1), (2, 2)],
    )
    def test_waiting_per_cycle_matches_exact_mva(self, populations):
        cpu_means = (0.05, 1.0)
        simulated = _simulate_two_station_site(cpu_means, populations)
        network = closed_network(
            [
                fcfs("disk0", [0.5, 0.5]),
                fcfs("disk1", [0.5, 0.5]),
                ps("cpu", list(cpu_means)),
            ],
            ["io", "cpu"],
        )
        solution = solve_mva(network, populations)
        for k in range(2):
            if populations[k] == 0:
                continue
            expected = solution.waiting_time(k)
            measured = simulated[k]
            assert measured == pytest.approx(expected, rel=0.12, abs=0.02), (
                f"class {k} at {populations}: sim {measured:.4f} vs "
                f"MVA {expected:.4f}"
            )


@pytest.mark.slow
class TestMultiServerAgreement:
    def test_shared_queue_disk_matches_load_dependent_station(self):
        # Shared 2-server disk + PS cpu, 3 identical customers.
        sim = Simulator(seed=7)
        disk = FCFSServer(sim, "disk", servers=2)
        cpu = PSServer(sim, "cpu")
        waits = []

        def customer(index):
            rng = sim.rng.stream(f"c{index}")
            while True:
                start = sim.now
                service = 0.0
                t = rng.expovariate(1.0)
                yield disk.service(t)
                service += t
                t = rng.expovariate(1.0 / 0.5)
                yield cpu.service(t)
                service += t
                if sim.now > 1000.0:
                    waits.append((sim.now - start) - service)

        for index in range(3):
            sim.launch(customer(index))
        sim.run(until=12000.0)
        measured = sum(waits) / len(waits)

        network = closed_network(
            [multiserver("disk", [1.0], 2), ps("cpu", [0.5])], ["jobs"]
        )
        expected = solve_mva(network, (3,)).waiting_time(0)
        assert measured == pytest.approx(expected, rel=0.10, abs=0.02)
