"""The repository tooling must keep working (docs generation)."""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestApiIndexGenerator:
    def test_generates_index(self, tmp_path, monkeypatch):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "gen_api_index.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        index = REPO_ROOT / "docs" / "api_index.md"
        assert index.exists()
        content = index.read_text(encoding="utf-8")
        # Spot-check the load-bearing exports appear.
        for needle in (
            "repro.sim.engine",
            "repro.queueing.mva",
            "repro.model.system",
            "repro.policies.lert",
            "`solve_mva`",
            "`DistributedDatabase`",
        ):
            assert needle in content, f"missing {needle} in API index"
