"""Fixture corpus for the whole-program flow rules (RL013–RL018).

Each rule gets (at least) one seeded violation that only a cross-module /
cross-function analysis can see, plus the same fixture with a
suppression pragma proving the pragma machinery reaches flow findings.
"""

from __future__ import annotations

from tests.lint.util import codes, lint_tree

# ----------------------------------------------------------------------
# RL013 — single-owner stream discipline
# ----------------------------------------------------------------------

RL013_SPLIT_OWNER = {
    "repro/sim/thinker.py": """
        def think_delay(sim):
            rng = sim.rng.stream("workload.think")
            return rng.expovariate(1.0)
    """,
    "repro/sim/router.py": """
        def route(sim, count):
            rng = sim.rng.stream("workload.think")
            return rng.randrange(count)
    """,
}


def test_rl013_flags_stream_drawn_from_two_functions(tmp_path):
    result = lint_tree(tmp_path, RL013_SPLIT_OWNER, select=["RL013"])
    assert codes(result) == ["RL013"]
    (violation,) = result.violations
    # The lexicographically-first qualname (router.route) owns; the
    # other drawing function is flagged.
    assert violation.path.endswith("thinker.py")
    assert "workload.think" in violation.message
    assert "route" in violation.message


def test_rl013_single_function_owner_is_clean(tmp_path):
    files = {
        "repro/sim/only.py": """
            def think(sim):
                rng = sim.rng.stream("workload.think")
                a = rng.expovariate(1.0)
                b = rng.random()
                return a + b
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL013"])
    assert codes(result) == []


def test_rl013_stream_passed_down_is_one_call_path(tmp_path):
    # The owner fetches once and hands the stream to a callee: that is
    # one call path, not two owners.
    files = {
        "repro/sim/owner.py": """
            def sample_pair(sim, dist):
                rng = sim.rng.stream("workload.demand")
                return dist.sample(rng), dist.sample(rng)
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL013"])
    assert codes(result) == []


def test_rl013_pragma_suppresses(tmp_path):
    files = dict(RL013_SPLIT_OWNER)
    files["repro/sim/thinker.py"] = """
        def think_delay(sim):
            rng = sim.rng.stream("workload.think")
            return rng.expovariate(1.0)  # reprolint: disable=RL013
    """
    result = lint_tree(tmp_path, files, select=["RL013"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL014 — RNG construction only inside the registry
# ----------------------------------------------------------------------

RL014_ROGUE_RNG = {
    "repro/model/shuffler.py": """
        import random

        def shuffled(items):
            rng = random.Random(42)
            out = list(items)
            rng.shuffle(out)
            return out
    """,
}


def test_rl014_flags_random_construction_outside_registry(tmp_path):
    result = lint_tree(tmp_path, RL014_ROGUE_RNG, select=["RL014"])
    assert codes(result) == ["RL014"]
    (violation,) = result.violations
    assert "random.Random" in violation.message
    assert violation.line == 5


def test_rl014_registry_module_is_exempt(tmp_path):
    files = {
        "repro/sim/rng.py": """
            import random

            def make(seed):
                return random.Random(seed)
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL014"])
    assert codes(result) == []


def test_rl014_pragma_suppresses(tmp_path):
    files = {
        "repro/model/shuffler.py": """
            import random

            def shuffled(items):
                rng = random.Random(42)  # reprolint: disable=RL014
                out = list(items)
                rng.shuffle(out)
                return out
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL014"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL015 — observer dunders must not reach a draw
# ----------------------------------------------------------------------

RL015_DRAWING_REPR = {
    "repro/model/probe.py": """
        class Probe:
            def __init__(self, sim):
                self.sim = sim

            def _peek(self):
                rng = self.sim.rng.stream("probe.peek")
                return rng.random()

            def __repr__(self):
                return f"<probe {self._peek()}>"
    """,
}


def test_rl015_flags_draw_reachable_from_repr(tmp_path):
    result = lint_tree(tmp_path, RL015_DRAWING_REPR, select=["RL015"])
    assert codes(result) == ["RL015"]
    (violation,) = result.violations
    assert "__repr__" in violation.message
    # Flagged at the dunder definition, not the (innocent) helper.
    assert violation.line == 10


def test_rl015_pure_repr_is_clean(tmp_path):
    files = {
        "repro/model/probe.py": """
            class Probe:
                def __init__(self, count):
                    self.count = count

                def __repr__(self):
                    return f"<probe {self.count}>"
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL015"])
    assert codes(result) == []


def test_rl015_pragma_suppresses(tmp_path):
    files = {
        "repro/model/probe.py": """
            class Probe:
                def __init__(self, sim):
                    self.sim = sim

                def _peek(self):
                    rng = self.sim.rng.stream("probe.peek")
                    return rng.random()

                def __repr__(self):  # reprolint: disable=RL015
                    return f"<probe {self._peek()}>"
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL015"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL016 — policy select() purity
# ----------------------------------------------------------------------

RL016_MUTATING_POLICY = {
    "repro/policies/greedy.py": """
        from repro.policies.base import AllocationPolicy

        class GreedyPolicy(AllocationPolicy):
            def select(self, query, view):
                view.loads[0] = 0.0
                return 0
    """,
}


def test_rl016_flags_view_mutation(tmp_path):
    result = lint_tree(tmp_path, RL016_MUTATING_POLICY, select=["RL016"])
    assert codes(result) == ["RL016"]
    (violation,) = result.violations
    assert "view.loads" in violation.message


def test_rl016_flags_helper_mediated_mutation(tmp_path):
    # The mutation happens two calls away — only the propagated summary
    # can see it from select().
    files = {
        "repro/policies/sneaky.py": """
            from repro.policies.base import AllocationPolicy

            def _tweak(view):
                view.estimates.clear()

            class SneakyPolicy(AllocationPolicy):
                def select(self, query, view):
                    self._rebalance(view)
                    return 0

                def _rebalance(self, view):
                    _tweak(view)
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL016"])
    assert codes(result) == ["RL016"]
    (violation,) = result.violations
    assert "view.estimates" in violation.message
    assert "helper" in violation.message


def test_rl016_private_policy_state_is_allowed(tmp_path):
    files = {
        "repro/policies/scan.py": """
            from repro.policies.base import AllocationPolicy

            class ScanPolicy(AllocationPolicy):
                def select(self, query, view):
                    self._view = view
                    self._scan_offset = self._scan_offset + 1
                    return self._scan_offset % len(view.candidates)
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL016"])
    assert codes(result) == []


def test_rl016_scheduling_from_select_is_flagged(tmp_path):
    files = {
        "repro/policies/pusher.py": """
            from repro.policies.base import AllocationPolicy

            class PushPolicy(AllocationPolicy):
                def select(self, query, view):
                    self.system.sim.schedule(0.0, self._poke)
                    return 0

                def _poke(self):
                    pass
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL016"])
    assert "RL016" in codes(result)


def test_rl016_pragma_suppresses(tmp_path):
    files = {
        "repro/policies/greedy.py": """
            from repro.policies.base import AllocationPolicy

            class GreedyPolicy(AllocationPolicy):
                def select(self, query, view):  # reprolint: disable=RL016
                    view.loads[0] = 0.0
                    return 0
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL016"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL017 — subscriber purity
# ----------------------------------------------------------------------

RL017_SCHEDULING_SUBSCRIBER = {
    "repro/telemetry/spy.py": """
        class Spy:
            def __init__(self, sim, bus):
                self.sim = sim
                bus.subscribe_all(self._on_event)

            def _on_event(self, event):
                self.sim.schedule(0.0, self._noop)

            def _noop(self):
                pass
    """,
}


def test_rl017_flags_subscriber_that_schedules(tmp_path):
    result = lint_tree(
        tmp_path, RL017_SCHEDULING_SUBSCRIBER, select=["RL017"]
    )
    assert codes(result) == ["RL017"]
    (violation,) = result.violations
    assert "_on_event" in violation.message
    # Flagged at the subscribe site, where the contract is entered.
    assert violation.line == 5


def test_rl017_accumulating_subscriber_is_clean(tmp_path):
    files = {
        "repro/telemetry/counter.py": """
            class EventCounter:
                def __init__(self, bus):
                    self.counts = {}
                    bus.subscribe_all(self._on_event)

                def _on_event(self, event):
                    self.counts[event.name] = self.counts.get(event.name, 0) + 1
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL017"])
    assert codes(result) == []


def test_rl017_flags_subscriber_mutating_the_event(tmp_path):
    files = {
        "repro/telemetry/marker.py": """
            class Marker:
                def __init__(self, bus):
                    bus.subscribe_all(self._on_event)

                def _on_event(self, event):
                    event.seen = True
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL017"])
    assert codes(result) == ["RL017"]
    assert "mutates the event" in result.violations[0].message


def test_rl017_pragma_suppresses(tmp_path):
    files = {
        "repro/telemetry/spy.py": """
            class Spy:
                def __init__(self, sim, bus):
                    self.sim = sim
                    bus.subscribe_all(self._on_event)  # reprolint: disable=RL017

                def _on_event(self, event):
                    self.sim.schedule(0.0, self._noop)

                def _noop(self):
                    pass
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL017"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL018 — unordered iteration feeding scheduling / draws
# ----------------------------------------------------------------------

RL018_SET_SCHEDULING = {
    "repro/faults/armer.py": """
        def arm_all(sim, sites):
            for site in set(sites):
                sim.schedule(1.0, site.crash)
    """,
}


def test_rl018_flags_set_iteration_that_schedules(tmp_path):
    result = lint_tree(tmp_path, RL018_SET_SCHEDULING, select=["RL018"])
    assert codes(result) == ["RL018"]
    (violation,) = result.violations
    assert "schedules simulation events" in violation.message
    assert violation.line == 3


def test_rl018_flags_callee_mediated_draw(tmp_path):
    # The draw happens inside a local helper the loop calls.
    files = {
        "repro/extensions/jitter.py": """
            def _jitter(sim):
                rng = sim.rng.stream("ext.jitter")
                return rng.random()

            def apply_all(sim, names):
                out = {}
                for name in set(names):
                    out[name] = _jitter(sim)
                return out
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL018"])
    assert codes(result) == ["RL018"]
    assert "draws from an RNG stream" in result.violations[0].message


def test_rl018_sorted_iteration_is_clean(tmp_path):
    files = {
        "repro/faults/armer.py": """
            def arm_all(sim, sites):
                for site in sorted(set(sites)):
                    sim.schedule(1.0, site.crash)
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL018"])
    assert codes(result) == []


def test_rl018_effect_free_set_loop_is_clean(tmp_path):
    files = {
        "repro/faults/tally.py": """
            def tally(sites):
                total = 0
                for site in set(sites):
                    total += 1
                return total
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL018"])
    assert codes(result) == []


def test_rl018_pragma_suppresses(tmp_path):
    files = {
        "repro/faults/armer.py": """
            def arm_all(sim, sites):
                for site in set(sites):  # reprolint: disable=RL018
                    sim.schedule(1.0, site.crash)
        """,
    }
    result = lint_tree(tmp_path, files, select=["RL018"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# Gating: flow rules run only under flow=True (or explicit select)
# ----------------------------------------------------------------------


def test_flow_rules_do_not_run_by_default(tmp_path):
    result = lint_tree(tmp_path, RL014_ROGUE_RNG)
    assert "RL014" not in codes(result)


def test_flow_rules_run_under_flow_flag(tmp_path):
    result = lint_tree(tmp_path, RL014_ROGUE_RNG, flow=True)
    assert "RL014" in codes(result)
