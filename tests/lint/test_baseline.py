"""Baseline / ratchet semantics: fingerprinting, subtraction, staleness, CLI."""

from __future__ import annotations

import json

import pytest

from repro.lint.base import rule_codes
from repro.lint.baseline import (
    BASELINE_VERSION,
    Baseline,
    apply_baseline,
    fingerprint,
)
from repro.lint.cli import main
from repro.lint.engine import lint_paths
from tests.lint.util import write_tree

ROGUE = {
    "repro/model/shuffler.py": """
        import random

        def shuffled(items):
            rng = random.Random(42)
            out = list(items)
            rng.shuffle(out)
            return out
    """,
}


def _flow_result(tmp_path, monkeypatch):
    write_tree(tmp_path, ROGUE)
    monkeypatch.chdir(tmp_path)
    return lint_paths([tmp_path / "repro"], flow=True)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def test_fingerprint_is_relative_posix_and_lineless(tmp_path, monkeypatch):
    result = _flow_result(tmp_path, monkeypatch)
    (violation,) = result.violations
    code, path, message = fingerprint(violation)
    assert code == "RL014"
    assert path == "repro/model/shuffler.py"  # cwd-relative, /-separated
    assert message == violation.message
    # Line numbers are deliberately not part of the identity.
    assert str(violation.line) not in (code, path)


# ----------------------------------------------------------------------
# Load / write round trip
# ----------------------------------------------------------------------


def test_write_load_round_trip(tmp_path, monkeypatch):
    result = _flow_result(tmp_path, monkeypatch)
    baseline = Baseline.from_result(result)
    target = tmp_path / "baseline.json"
    baseline.write(target)
    assert Baseline.load(target).entries == baseline.entries
    document = json.loads(target.read_text(encoding="utf-8"))
    assert document["version"] == BASELINE_VERSION
    assert len(document["entries"]) == 1


def test_load_tolerates_extra_keys(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "code": "RL014",
                        "path": "repro/x.py",
                        "message": "m",
                        "reason": "annotated by a human",
                    }
                ],
            }
        ),
        encoding="utf-8",
    )
    baseline = Baseline.load(target)
    assert baseline.entries == [("RL014", "repro/x.py", "m")]


def test_load_rejects_bad_schema(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text('{"version": 99, "entries": []}', encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported baseline schema"):
        Baseline.load(target)
    target.write_text("not json", encoding="utf-8")
    with pytest.raises(ValueError, match="not valid JSON"):
        Baseline.load(target)


# ----------------------------------------------------------------------
# apply_baseline: subtraction, multiset matching, staleness
# ----------------------------------------------------------------------


def test_apply_subtracts_matching_findings(tmp_path, monkeypatch):
    result = _flow_result(tmp_path, monkeypatch)
    baseline = Baseline.from_result(result)
    outcome = apply_baseline(result, baseline, rule_codes())
    assert outcome.new_violations == []
    assert outcome.stale_entries == []
    assert outcome.matched == 1


def test_apply_flags_uncovered_finding(tmp_path, monkeypatch):
    result = _flow_result(tmp_path, monkeypatch)
    outcome = apply_baseline(result, Baseline(), rule_codes())
    assert len(outcome.new_violations) == 1
    assert outcome.matched == 0


def test_apply_is_multiset_aware(tmp_path, monkeypatch):
    # Two identical findings need two baseline entries.
    files = dict(ROGUE)
    files["repro/model/other.py"] = ROGUE["repro/model/shuffler.py"]
    write_tree(tmp_path, files)
    monkeypatch.chdir(tmp_path)
    result = lint_paths([tmp_path / "repro"], flow=True)
    assert len(result.violations) == 2
    one_entry = Baseline(entries=[fingerprint(result.violations[0])])
    outcome = apply_baseline(result, one_entry, rule_codes())
    assert outcome.matched == 1
    assert len(outcome.new_violations) == 1


def test_stale_entry_is_reported(tmp_path, monkeypatch):
    result = _flow_result(tmp_path, monkeypatch)
    baseline = Baseline.from_result(result)
    baseline.entries.append(("RL014", "repro/model/gone.py", "never existed"))
    outcome = apply_baseline(result, baseline, rule_codes())
    assert outcome.stale_entries == [
        ("RL014", "repro/model/gone.py", "never existed")
    ]


def test_staleness_only_judged_for_active_codes(tmp_path, monkeypatch):
    # A flow-rule entry is not stale in a run where flow rules did not run.
    result = _flow_result(tmp_path, monkeypatch)
    baseline = Baseline.from_result(result)
    baseline.entries.append(("RL014", "repro/model/gone.py", "never existed"))
    outcome = apply_baseline(result, baseline, active_codes=["RL001"])
    assert outcome.stale_entries == []


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


def test_cli_update_baseline_then_clean(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, ROGUE)
    monkeypatch.chdir(tmp_path)
    assert main(["--flow", "--update-baseline", "repro"]) == 0
    out = capsys.readouterr().out
    assert "wrote 1 accepted finding(s)" in out
    # The default lint-baseline.json is now auto-detected under --flow...
    assert main(["--flow", "repro"]) == 0
    # ...but a plain (non-flow) run neither applies nor needs it.
    assert main(["repro"]) == 0


def test_cli_new_finding_still_fails_with_baseline(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, ROGUE)
    monkeypatch.chdir(tmp_path)
    assert main(["--flow", "--update-baseline", "repro"]) == 0
    capsys.readouterr()
    write_tree(
        tmp_path,
        {
            "repro/model/fresh.py": """
                import random

                def pick(items):
                    return random.Random(7).choice(items)
            """,
        },
    )
    assert main(["--flow", "repro"]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out
    assert "shuffler.py" not in out  # the accepted finding stays absorbed


def test_cli_stale_baseline_entry_exits_2(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, ROGUE)
    monkeypatch.chdir(tmp_path)
    assert main(["--flow", "--update-baseline", "repro"]) == 0
    capsys.readouterr()
    # Fix the finding; its baseline entry is now stale.
    (tmp_path / "repro" / "model" / "shuffler.py").write_text(
        "def shuffled(items):\n    return sorted(items)\n", encoding="utf-8"
    )
    assert main(["--flow", "repro"]) == 2
    err = capsys.readouterr().err
    assert "stale baseline entry" in err
    assert "only shrinks" in err


def test_cli_explicit_baseline_flag(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, ROGUE)
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "accepted.json"
    assert (
        main(["--flow", "--baseline", str(target), "--update-baseline", "repro"])
        == 0
    )
    assert target.is_file()
    capsys.readouterr()
    assert main(["--flow", "--baseline", str(target), "repro"]) == 0


def test_cli_malformed_baseline_exits_2(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, ROGUE)
    (tmp_path / "lint-baseline.json").write_text("not json", encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["--flow", "repro"]) == 2
    assert "not valid JSON" in capsys.readouterr().err
