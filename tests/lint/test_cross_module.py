"""RL006 — the cross-module serialization-coverage check.

These fixtures build a miniature ``repro`` tree with a config module and a
serialization module, then vary whether the serializer mentions every
dataclass field.
"""

from __future__ import annotations

from tests.lint.util import codes, lint_tree

SERIALIZER_OK = """\
    def config_to_dict(config):
        return {
            "num_sites": config.num_sites,
            "think_time": config.think_time,
        }
"""

SERIALIZER_MISSING_FIELD = """\
    def config_to_dict(config):
        return {"num_sites": config.num_sites}
"""

CONFIG = """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class SystemConfig:
        num_sites: int = 6
        think_time: float = 350.0
"""


def test_rl006_clean_when_all_fields_serialized(tmp_path):
    result = lint_tree(
        tmp_path,
        {
            "repro/model/config.py": CONFIG,
            "repro/model/serialization.py": SERIALIZER_OK,
        },
        select=["RL006"],
    )
    assert codes(result) == []


def test_rl006_fires_on_unserialized_field(tmp_path):
    result = lint_tree(
        tmp_path,
        {
            "repro/model/config.py": CONFIG,
            "repro/model/serialization.py": SERIALIZER_MISSING_FIELD,
        },
        select=["RL006"],
    )
    assert codes(result) == ["RL006"]
    (violation,) = result.violations
    assert "SystemConfig.think_time" in violation.message
    assert violation.path.endswith("repro/model/config.py")
    assert violation.line == 6  # the field's own line


def test_rl006_ignores_non_dataclass_and_private_and_classvar(tmp_path):
    config = """\
        from dataclasses import dataclass
        from typing import ClassVar

        class NotADataclass:
            num_disks: int = 2

        @dataclass
        class SystemConfig:
            num_sites: int = 6
            _derived: float = 0.0
            kind: ClassVar[str] = "static"
    """
    result = lint_tree(
        tmp_path,
        {
            "repro/model/config.py": config,
            "repro/model/serialization.py": SERIALIZER_MISSING_FIELD,
        },
        select=["RL006"],
    )
    assert codes(result) == []


def test_rl006_skipped_without_serialization_module(tmp_path):
    # Partial runs (single files) cannot apply the cross-module check.
    result = lint_tree(
        tmp_path,
        {"repro/model/config.py": CONFIG},
        select=["RL006"],
    )
    assert codes(result) == []


def test_rl006_out_of_scope_dataclasses_are_ignored(tmp_path):
    helper = """\
        from dataclasses import dataclass

        @dataclass
        class ScratchState:
            anything_goes: int = 0
    """
    result = lint_tree(
        tmp_path,
        {
            "repro/experiments/scratch.py": helper,
            "repro/model/serialization.py": SERIALIZER_MISSING_FIELD,
        },
        select=["RL006"],
    )
    assert codes(result) == []


def test_rl006_real_tree_field_addition_is_caught(tmp_path):
    """Adding a field to the *real* SystemConfig without serializing it fires.

    This is the acceptance-criterion scenario: copy the real config and
    serialization sources, graft an extra field onto SystemConfig, and
    check the linter notices the cache-key gap.
    """
    import pathlib

    repo_src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    config_source = (repo_src / "model" / "config.py").read_text(encoding="utf-8")
    serialization_source = (repo_src / "model" / "serialization.py").read_text(
        encoding="utf-8"
    )
    grafted = config_source.replace(
        "    integer_reads: bool = True\n",
        "    integer_reads: bool = True\n    shiny_new_knob: float = 1.0\n",
        1,
    )
    assert "shiny_new_knob" in grafted
    result = lint_tree(
        tmp_path,
        {
            "repro/model/config.py": grafted,
            "repro/model/serialization.py": serialization_source,
        },
        select=["RL006"],
    )
    assert codes(result) == ["RL006"]
    assert "shiny_new_knob" in result.violations[0].message
