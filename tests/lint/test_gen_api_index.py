"""tools/gen_api_index.py — --check mode and import-error hardening.

The drift check is only trustworthy if a broken module makes the tool
fail loudly instead of silently dropping the module from the index.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import textwrap

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "gen_api_index.py"


def _run(pythonpath: pathlib.Path, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pythonpath)
    return subprocess.run(
        [sys.executable, str(TOOL), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_check_passes_on_current_tree():
    result = _run(REPO_ROOT / "src", "--check")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "up to date" in result.stdout


def test_check_fails_loudly_on_import_error(tmp_path):
    """A repro submodule that raises on import must exit 2, not be skipped."""
    package = tmp_path / "repro"
    package.mkdir()
    (package / "__init__.py").write_text('"""Fake repro."""\n', encoding="utf-8")
    (package / "broken.py").write_text(
        textwrap.dedent(
            """\
            \"\"\"A module that cannot be imported.\"\"\"
            raise ImportError("deliberately broken for the drift-check test")
            """
        ),
        encoding="utf-8",
    )
    result = _run(tmp_path, "--check")
    assert result.returncode == 2, result.stdout + result.stderr
    assert "error importing" in result.stderr


def test_check_detects_stale_index(tmp_path):
    """A fake healthy repro package whose API differs from docs -> exit 1."""
    package = tmp_path / "repro"
    package.mkdir()
    (package / "__init__.py").write_text('"""Fake repro."""\n', encoding="utf-8")
    (package / "widget.py").write_text(
        textwrap.dedent(
            """\
            \"\"\"A module the real index has never heard of.\"\"\"

            def frobnicate():
                \"\"\"Do the frob.\"\"\"

            __all__ = ["frobnicate"]
            """
        ),
        encoding="utf-8",
    )
    result = _run(tmp_path, "--check")
    assert result.returncode == 1, result.stdout + result.stderr
    assert "stale" in result.stderr
