"""Meta-tests: the real source tree is lint-clean, and the tooling gates work.

``test_src_repro_is_clean`` is the point of the whole exercise — it turns
every determinism invariant into a test-suite guarantee, so a PR that
reintroduces (say) ``sum()`` aggregation or a wall-clock read fails CI
twice: once here and once in the dedicated lint job.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

from repro.lint.base import iter_rules, rule_codes
from repro.lint.engine import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _env_with_src() -> dict:
    """Subprocess env whose PYTHONPATH can import repro from src/."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def test_src_repro_is_clean():
    result = lint_paths([SRC_REPRO])
    assert result.errors == []
    assert result.violations == [], "\n" + "\n".join(
        violation.render() for violation in result.violations
    )
    assert result.files_checked > 70  # the whole package was really scanned
    assert result.exit_code == 0


def test_all_advertised_rules_are_registered():
    codes = rule_codes()
    expected = [f"RL{n:03d}" for n in range(1, 20)]
    assert codes == expected
    for rule in iter_rules():
        assert rule.summary, f"{rule.code} has no summary"
        assert rule.scope, f"{rule.code} has no scope"


def test_flow_rules_are_gated_behind_flow_flag():
    flow_codes = {rule.code for rule in iter_rules() if rule.flow}
    assert flow_codes == {f"RL{n:03d}" for n in range(13, 19)}


def test_src_repro_is_flow_clean_modulo_baseline(monkeypatch):
    """The whole-program rules hold on the real tree.

    Findings accepted in ``lint-baseline.json`` are subtracted (each must
    still match — a stale entry fails); anything new fails outright.
    """
    from repro.lint.baseline import Baseline, apply_baseline

    # Fingerprints are repo-relative; anchor the cwd accordingly.
    monkeypatch.chdir(REPO_ROOT)
    result = lint_paths([SRC_REPRO], flow=True)
    assert result.errors == []
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    outcome = apply_baseline(result, baseline, rule_codes())
    assert outcome.new_violations == [], "\n" + "\n".join(
        violation.render() for violation in outcome.new_violations
    )
    assert outcome.stale_entries == []
    assert outcome.matched == len(baseline.entries)


def test_python_dash_m_entry_point_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(SRC_REPRO)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violations" in proc.stdout


def test_python_dash_m_entry_point_detects_violation(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )
    assert proc.returncode == 1
    assert "RL002" in proc.stdout
    assert "bad.py:2:" in proc.stdout
