"""Report formats, JSON schema, SARIF, CLI behaviour, and exit codes."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.lint.cli import main
from repro.lint.engine import (
    Suppressions,
    lint_paths,
    module_name_for,
    parse_suppressions,
)
from repro.lint.base import rule_codes
from repro.lint.report import (
    JSON_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)

from tests.lint.util import write_tree

DIRTY = {
    "repro/sim/stats.py": (
        "def avg(xs):\n"
        "    return sum(xs) / len(xs)\n"
    )
}

CLEAN = {"repro/sim/ok.py": "X = 1\n"}


def test_json_schema(tmp_path):
    write_tree(tmp_path, DIRTY)
    result = lint_paths([tmp_path])
    document = json.loads(render_json(result))
    assert set(document) == {
        "version",
        "files_checked",
        "violation_count",
        "errors",
        "violations",
    }
    assert document["version"] == JSON_VERSION
    assert document["files_checked"] == 1
    assert document["violation_count"] == 1
    assert document["errors"] == []
    (violation,) = document["violations"]
    assert set(violation) == {"code", "message", "path", "line", "column"}
    assert violation["code"] == "RL004"
    assert violation["line"] == 2
    assert violation["path"].endswith("repro/sim/stats.py")


def test_text_output_format(tmp_path):
    write_tree(tmp_path, DIRTY)
    result = lint_paths([tmp_path])
    text = render_text(result)
    lines = text.splitlines()
    assert lines[0].startswith(str(tmp_path))
    assert ":2:" in lines[0]
    assert "RL004" in lines[0]
    assert lines[-1] == "1 violation in 1 files checked"


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    write_tree(tmp_path, CLEAN)
    assert main([str(tmp_path)]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exit_one_with_rule_code_and_location(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RL004" in out
    assert "stats.py:2:" in out


def test_cli_json_flag(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert main(["--format", "json", str(tmp_path)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["violation_count"] == 1


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_unknown_select_code_is_usage_error(tmp_path, capsys):
    write_tree(tmp_path, CLEAN)
    assert main(["--select", "RL999", str(tmp_path)]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_syntax_error_exit_two(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/broken.py": "def f(:\n"})
    assert main([str(tmp_path)]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL004", "RL006", "RL010"):
        assert code in out


def test_cli_ignore_flag(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert main(["--ignore", "RL004", str(tmp_path)]) == 0
    capsys.readouterr()


def test_sarif_document(tmp_path):
    write_tree(tmp_path, DIRTY)
    result = lint_paths([tmp_path])
    document = json.loads(render_sarif(result))
    assert document["version"] == SARIF_VERSION
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    # Every registered rule is documented, not just the ones that fired.
    assert [rule["id"] for rule in driver["rules"]] == rule_codes()
    (finding,) = run["results"]
    assert finding["ruleId"] == "RL004"
    region = finding["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2
    assert region["startColumn"] >= 1  # SARIF columns are 1-based
    (invocation,) = run["invocations"]
    assert invocation["executionSuccessful"] is True
    assert invocation["toolExecutionNotifications"] == []


def test_sarif_errors_become_notifications(tmp_path):
    write_tree(tmp_path, {"repro/sim/broken.py": "def f(:\n"})
    result = lint_paths([tmp_path])
    (run,) = json.loads(render_sarif(result))["runs"]
    (invocation,) = run["invocations"]
    assert invocation["executionSuccessful"] is False
    (notification,) = invocation["toolExecutionNotifications"]
    assert "syntax error" in notification["message"]["text"]


def test_cli_sarif_flag(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert main(["--format", "sarif", str(tmp_path)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == SARIF_VERSION


MANY_FILES = {
    f"repro/sim/mod_{letter}.py": (
        "import time\n"
        f"def f_{letter}():\n"
        "    return time.time()\n"
    )
    for letter in "abcde"
}


def test_reports_are_stable_across_walk_order(tmp_path, monkeypatch):
    """Byte-identical output no matter what order the filesystem yields."""
    write_tree(tmp_path, MANY_FILES)
    forward = lint_paths([tmp_path])

    original_rglob = pathlib.Path.rglob

    def reversed_rglob(self, pattern):
        return reversed(list(original_rglob(self, pattern)))

    monkeypatch.setattr(pathlib.Path, "rglob", reversed_rglob)
    backward = lint_paths([tmp_path])
    assert render_text(backward) == render_text(forward)
    assert render_json(backward) == render_json(forward)
    assert render_sarif(backward) == render_sarif(forward)


def test_errors_are_sorted(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/sim/z_broken.py": "def f(:\n",
            "repro/sim/a_broken.py": "class :\n",
        },
    )
    result = lint_paths([tmp_path])
    assert len(result.errors) == 2
    assert result.errors == sorted(result.errors)
    assert "a_broken.py" in result.errors[0]


# ----------------------------------------------------------------------
# Tokenizer failures in pragma scanning surface as RL000, not silence
# ----------------------------------------------------------------------


def test_parse_suppressions_records_tokenizer_failure():
    pragmas = parse_suppressions("(\n", rule_codes())
    assert pragmas.failure is not None
    assert "TokenError" in pragmas.failure
    # A failed scan never silences anything.
    assert not pragmas.silences("RL004", 1)


def test_tokenizer_failure_is_an_rl000_finding(tmp_path, monkeypatch, capsys):
    # ast accepts more than tokenize only in exotic cases, so simulate
    # the split by forcing the pragma scan to fail on a parseable file.
    write_tree(tmp_path, CLEAN)

    def failing_scan(source, known_codes):
        return Suppressions(failure="TokenError: simulated")

    monkeypatch.setattr("repro.lint.engine.parse_suppressions", failing_scan)
    result = lint_paths([tmp_path])
    (violation,) = result.violations
    assert violation.code == "RL000"
    assert "could not be scanned" in violation.message
    assert "TokenError: simulated" in violation.message
    assert result.exit_code == 1


def test_cli_exits_nonzero_on_tokenizer_failure(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, CLEAN)
    monkeypatch.setattr(
        "repro.lint.engine.parse_suppressions",
        lambda source, known: Suppressions(failure="TokenError: simulated"),
    )
    assert main([str(tmp_path)]) == 1
    assert "RL000" in capsys.readouterr().out


@pytest.mark.parametrize(
    "path, expected",
    [
        ("src/repro/sim/engine.py", "repro.sim.engine"),
        ("src/repro/__init__.py", "repro"),
        ("src/repro/model/__init__.py", "repro.model"),
        ("elsewhere/repro/policies/lert.py", "repro.policies.lert"),
        ("scripts/standalone.py", "standalone"),
    ],
)
def test_module_name_for(path, expected):
    assert module_name_for(pathlib.Path(path)) == expected
