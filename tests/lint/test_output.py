"""Report formats, JSON schema, CLI behaviour, and exit codes."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.lint.cli import main
from repro.lint.engine import lint_paths, module_name_for
from repro.lint.report import JSON_VERSION, render_json, render_text

from tests.lint.util import write_tree

DIRTY = {
    "repro/sim/stats.py": (
        "def avg(xs):\n"
        "    return sum(xs) / len(xs)\n"
    )
}

CLEAN = {"repro/sim/ok.py": "X = 1\n"}


def test_json_schema(tmp_path):
    write_tree(tmp_path, DIRTY)
    result = lint_paths([tmp_path])
    document = json.loads(render_json(result))
    assert set(document) == {
        "version",
        "files_checked",
        "violation_count",
        "errors",
        "violations",
    }
    assert document["version"] == JSON_VERSION
    assert document["files_checked"] == 1
    assert document["violation_count"] == 1
    assert document["errors"] == []
    (violation,) = document["violations"]
    assert set(violation) == {"code", "message", "path", "line", "column"}
    assert violation["code"] == "RL004"
    assert violation["line"] == 2
    assert violation["path"].endswith("repro/sim/stats.py")


def test_text_output_format(tmp_path):
    write_tree(tmp_path, DIRTY)
    result = lint_paths([tmp_path])
    text = render_text(result)
    lines = text.splitlines()
    assert lines[0].startswith(str(tmp_path))
    assert ":2:" in lines[0]
    assert "RL004" in lines[0]
    assert lines[-1] == "1 violation in 1 files checked"


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    write_tree(tmp_path, CLEAN)
    assert main([str(tmp_path)]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exit_one_with_rule_code_and_location(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RL004" in out
    assert "stats.py:2:" in out


def test_cli_json_flag(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert main(["--format", "json", str(tmp_path)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["violation_count"] == 1


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_unknown_select_code_is_usage_error(tmp_path, capsys):
    write_tree(tmp_path, CLEAN)
    assert main(["--select", "RL999", str(tmp_path)]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_syntax_error_exit_two(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/broken.py": "def f(:\n"})
    assert main([str(tmp_path)]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL004", "RL006", "RL010"):
        assert code in out


def test_cli_ignore_flag(tmp_path, capsys):
    write_tree(tmp_path, DIRTY)
    assert main(["--ignore", "RL004", str(tmp_path)]) == 0
    capsys.readouterr()


@pytest.mark.parametrize(
    "path, expected",
    [
        ("src/repro/sim/engine.py", "repro.sim.engine"),
        ("src/repro/__init__.py", "repro"),
        ("src/repro/model/__init__.py", "repro.model"),
        ("elsewhere/repro/policies/lert.py", "repro.policies.lert"),
        ("scripts/standalone.py", "standalone"),
    ],
)
def test_module_name_for(path, expected):
    assert module_name_for(pathlib.Path(path)) == expected
