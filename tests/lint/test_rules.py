"""Firing and non-firing fixture snippets for every reprolint rule.

Each rule gets at least one positive (violating) and one negative (clean)
fixture, exercised through the full engine so scoping, name resolution,
and location reporting are all covered.
"""

from __future__ import annotations

import pytest

from tests.lint.util import codes, lint_snippet

# ----------------------------------------------------------------------
# RL001 — no global RNG state
# ----------------------------------------------------------------------

RL001_FIRING = [
    ("repro/model/workload.py", "import random\nx = random.random()\n"),
    ("repro/model/workload.py", "import random\nrandom.seed(3)\n"),
    ("repro/sim/thing.py", "from random import seed as s\ns(1)\n"),
    ("repro/policies/p.py", "import numpy as np\nv = np.random.uniform()\n"),
    ("repro/policies/p.py", "import numpy.random\nnumpy.random.seed(0)\n"),
    (
        "repro/queueing/q.py",
        "from numpy import random as npr\nnpr.shuffle([1, 2])\n",
    ),
]

RL001_CLEAN = [
    # Constructing an owned stream is exactly the fix RL001 demands.
    ("repro/sim/rng2.py", "import random\nstream = random.Random(7)\n"),
    # Method calls on a stream object are fine.
    (
        "repro/model/workload.py",
        "def draw(rng):\n    return rng.random() + rng.expovariate(1.0)\n",
    ),
    ("repro/policies/p.py", "import numpy as np\ng = np.random.default_rng(3)\n"),
    # A local variable that happens to be called `random` is not the module.
    ("repro/sim/x.py", "def f(random):\n    return random.slice(1)\n"),
]


@pytest.mark.parametrize("relative, source", RL001_FIRING)
def test_rl001_fires(tmp_path, relative, source):
    result = lint_snippet(tmp_path, relative, source, select=["RL001"])
    assert codes(result) == ["RL001"], result.violations


@pytest.mark.parametrize("relative, source", RL001_CLEAN)
def test_rl001_clean(tmp_path, relative, source):
    result = lint_snippet(tmp_path, relative, source, select=["RL001"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL002 — no wall clock in core simulation code
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "import time\nt = time.time()\n",
        "import time\nt = time.perf_counter()\n",
        "from time import monotonic\nt = monotonic()\n",
        "from datetime import datetime\nnow = datetime.now()\n",
        "import datetime\nd = datetime.date.today()\n",
    ],
)
def test_rl002_fires_in_core(tmp_path, source):
    result = lint_snippet(tmp_path, "repro/sim/clocky.py", source, select=["RL002"])
    assert codes(result) == ["RL002"]


def test_rl002_reports_location(tmp_path):
    source = "import time\n\n\nt = time.time()\n"
    result = lint_snippet(tmp_path, "repro/model/m.py", source, select=["RL002"])
    (violation,) = result.violations
    assert violation.line == 4
    assert violation.path.endswith("repro/model/m.py")


def test_rl002_allows_experiments_layer(tmp_path):
    source = "import time\nstarted = time.perf_counter()\n"
    result = lint_snippet(
        tmp_path, "repro/experiments/timing.py", source, select=["RL002"]
    )
    assert codes(result) == []


def test_rl002_allows_simulated_time(tmp_path):
    source = "def f(sim):\n    return sim.now\n"
    result = lint_snippet(tmp_path, "repro/sim/ok.py", source, select=["RL002"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL003 — no unordered iteration in core simulation code
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "for site in {3, 1, 2}:\n    print(site)\n",
        "for site in set(range(4)):\n    pass\n",
        "for site in frozenset([1, 2]):\n    pass\n",
        "def f(a, b):\n    for s in a.union(b):\n        pass\n",
        "def f(a, b):\n    return [s for s in a.intersection(b)]\n",
        "for s in list(set([1, 2])):\n    pass\n",
        "def f(xs):\n    return {x for x in set(xs)}\n",
    ],
)
def test_rl003_fires(tmp_path, source):
    result = lint_snippet(tmp_path, "repro/sim/agg.py", source, select=["RL003"])
    assert "RL003" in codes(result)


@pytest.mark.parametrize(
    "source",
    [
        "for site in sorted({3, 1, 2}):\n    pass\n",
        "for site in sorted(set(range(4))):\n    pass\n",
        "def f(a, b):\n    for s in sorted(a.union(b)):\n        pass\n",
        "for site in [3, 1, 2]:\n    pass\n",
        "def f(d):\n    for k in d.items():\n        pass\n",
    ],
)
def test_rl003_clean(tmp_path, source):
    result = lint_snippet(tmp_path, "repro/sim/agg.py", source, select=["RL003"])
    assert codes(result) == []


def test_rl003_out_of_scope_in_experiments(tmp_path):
    source = "for x in {1, 2}:\n    pass\n"
    result = lint_snippet(
        tmp_path, "repro/experiments/e.py", source, select=["RL003"]
    )
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL004 — aggregation must use math.fsum
# ----------------------------------------------------------------------


def test_rl004_fires_in_aggregation_module(tmp_path):
    source = "def avg(xs):\n    return sum(xs) / len(xs)\n"
    result = lint_snippet(tmp_path, "repro/sim/stats.py", source, select=["RL004"])
    assert codes(result) == ["RL004"]


def test_rl004_clean_with_fsum(tmp_path):
    source = "import math\n\ndef avg(xs):\n    return math.fsum(xs) / len(xs)\n"
    result = lint_snippet(tmp_path, "repro/sim/stats.py", source, select=["RL004"])
    assert codes(result) == []


def test_rl004_out_of_scope_module(tmp_path):
    # sum() is fine outside the aggregation modules (e.g. config checks).
    source = "def total(xs):\n    return sum(xs)\n"
    result = lint_snippet(tmp_path, "repro/model/config.py", source, select=["RL004"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL005 — no mutable default arguments
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "def f(xs=[]):\n    return xs\n",
        "def f(m={}):\n    return m\n",
        "def f(s=set()):\n    return s\n",
        "def f(*, xs=list()):\n    return xs\n",
        "import collections\ndef f(d=collections.defaultdict(list)):\n    return d\n",
        "g = lambda xs=[]: xs\n",
    ],
)
def test_rl005_fires(tmp_path, source):
    result = lint_snippet(tmp_path, "repro/analysis/a.py", source, select=["RL005"])
    assert codes(result) == ["RL005"]


@pytest.mark.parametrize(
    "source",
    [
        "def f(xs=None):\n    return xs or []\n",
        "def f(xs=()):\n    return xs\n",
        "def f(name='x', n=3):\n    return name * n\n",
    ],
)
def test_rl005_clean(tmp_path, source):
    result = lint_snippet(tmp_path, "repro/analysis/a.py", source, select=["RL005"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL007 — no environment reads in core simulation code
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "import os\nv = os.environ.get('HOME')\n",
        "import os\nv = os.getenv('HOME')\n",
        "import platform\np = platform.system()\n",
        "import getpass\nu = getpass.getuser()\n",
        "from os import environ\nv = environ['HOME']\n",
    ],
)
def test_rl007_fires_in_core(tmp_path, source):
    result = lint_snippet(tmp_path, "repro/queueing/env.py", source, select=["RL007"])
    assert codes(result) == ["RL007"]


def test_rl007_allows_experiments_layer(tmp_path):
    source = "import os\nv = os.environ.get('REPRO_CACHE_DIR')\n"
    result = lint_snippet(
        tmp_path, "repro/experiments/cache2.py", source, select=["RL007"]
    )
    assert codes(result) == []


def test_rl007_allows_os_path_in_core(tmp_path):
    source = "import os\np = os.path.join('a', 'b')\n"
    result = lint_snippet(tmp_path, "repro/sim/io.py", source, select=["RL007"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL008 — no bare except / swallowed kernel exceptions
# ----------------------------------------------------------------------


def test_rl008_bare_except_fires_anywhere(tmp_path):
    source = "try:\n    x = 1\nexcept:\n    x = 2\n"
    result = lint_snippet(
        tmp_path, "repro/experiments/h.py", source, select=["RL008"]
    )
    assert codes(result) == ["RL008"]


def test_rl008_swallowed_exception_fires_in_kernel(tmp_path):
    source = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
    result = lint_snippet(tmp_path, "repro/sim/engine2.py", source, select=["RL008"])
    assert codes(result) == ["RL008"]


def test_rl008_swallow_allowed_outside_kernel(tmp_path):
    # Outside repro.sim, except-with-pass is tolerated (e.g. cache misses).
    source = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
    result = lint_snippet(
        tmp_path, "repro/experiments/c.py", source, select=["RL008"]
    )
    assert codes(result) == []


def test_rl008_handled_exception_clean_in_kernel(tmp_path):
    source = (
        "try:\n"
        "    x = 1\n"
        "except ValueError as err:\n"
        "    raise RuntimeError('bad') from err\n"
    )
    result = lint_snippet(tmp_path, "repro/sim/engine2.py", source, select=["RL008"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL009 — no print() in core simulation code
# ----------------------------------------------------------------------


def test_rl009_fires_in_core(tmp_path):
    source = "def f():\n    print('debug')\n"
    result = lint_snippet(tmp_path, "repro/model/site2.py", source, select=["RL009"])
    assert codes(result) == ["RL009"]


def test_rl009_allows_experiments_output(tmp_path):
    source = "def report(t):\n    print(t.render())\n"
    result = lint_snippet(
        tmp_path, "repro/experiments/r.py", source, select=["RL009"]
    )
    assert codes(result) == []


def test_rl009_docstring_mention_is_clean(tmp_path):
    source = '"""Example::\n\n    print(monitor.summary())\n"""\nX = 1\n'
    result = lint_snippet(tmp_path, "repro/model/b.py", source, select=["RL009"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL010 — directory listings must be sorted
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "import os\nfor name in os.listdir('.'):\n    pass\n",
        "import glob\nfor name in glob.glob('*.json'):\n    pass\n",
        "def f(root):\n    for p in root.iterdir():\n        pass\n",
        "def f(root):\n    return [p for p in root.glob('*.json')]\n",
        "def f(root):\n    for p in list(root.rglob('*.py')):\n        pass\n",
    ],
)
def test_rl010_fires(tmp_path, source):
    result = lint_snippet(
        tmp_path, "repro/experiments/files.py", source, select=["RL010"]
    )
    assert "RL010" in codes(result)


@pytest.mark.parametrize(
    "source",
    [
        "import os\nfor name in sorted(os.listdir('.')):\n    pass\n",
        "def f(root):\n    for p in sorted(root.glob('*.json')):\n        pass\n",
        "def f(names):\n    for n in names:\n        pass\n",
    ],
)
def test_rl010_clean(tmp_path, source):
    result = lint_snippet(
        tmp_path, "repro/experiments/files.py", source, select=["RL010"]
    )
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL011 — fault-schedule randomness must use named sim.rng streams
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        # Owned streams are fine elsewhere (RL001 allows them) but not in
        # the fault layer: the schedule must derive from (seed, plan).
        "import random\nrng = random.Random(42)\n",
        "import random\n\ndef chain(spec):\n    return random.Random(spec.site)\n",
        "import numpy as np\ng = np.random.default_rng(3)\n",
        "def f(rng):\n    rng.seed(0)\n    return rng.random()\n",
    ],
)
def test_rl011_fires(tmp_path, source):
    result = lint_snippet(
        tmp_path, "repro/faults/injector2.py", source, select=["RL011"]
    )
    assert "RL011" in codes(result)


@pytest.mark.parametrize(
    "relative, source",
    [
        # Named streams are the blessed spelling.
        (
            "repro/faults/injector2.py",
            "def chain(sim, i, s):\n"
            "    rng = sim.rng.stream(f'faults.outage{i}.s{s}')\n"
            "    return rng.expovariate(1.0)\n",
        ),
        # Drawing from a stream object is fine.
        (
            "repro/faults/net.py",
            "def drop(rng, p):\n    return rng.random() < p\n",
        ),
        # Outside repro.faults the rule never applies.
        (
            "repro/model/other.py",
            "import random\nrng = random.Random(42)\n",
        ),
    ],
)
def test_rl011_clean(tmp_path, relative, source):
    result = lint_snippet(tmp_path, relative, source, select=["RL011"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL012 — event-list internals stay inside repro.sim.events
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "relative, source",
    [
        (
            "repro/sim/scheduler2.py",
            "import heapq\n\ndef pick(entries):\n    return heapq.heappop(entries)\n",
        ),
        (
            "repro/sim/scheduler3.py",
            "from heapq import heappush\n\ndef add(h, e):\n    heappush(h, e)\n",
        ),
        (
            "repro/model/peek.py",
            "def next_time(sim):\n    return sim._queue._heap[0][0]\n",
        ),
        (
            "repro/faults/drain.py",
            "def drain(queue):\n    queue._buckets.clear()\n    queue._keys.clear()\n",
        ),
        (
            "repro/sim/pool.py",
            "def reuse(queue):\n    return queue._free.pop()\n",
        ),
    ],
)
def test_rl012_fires(tmp_path, relative, source):
    result = lint_snippet(tmp_path, relative, source, select=["RL012"])
    assert "RL012" in codes(result)


@pytest.mark.parametrize(
    "relative, source",
    [
        # The one implementation home is exempt.
        (
            "repro/sim/events.py",
            "import heapq\n\ndef pick(h):\n    return heapq.heappop(h)\n",
        ),
        # The public queue API is the blessed spelling everywhere else.
        (
            "repro/sim/resources2.py",
            "from repro.sim.events import MinHeap\n\n"
            "def build():\n"
            "    heap = MinHeap()\n"
            "    heap.push((1.0, 0))\n"
            "    return heap.peek()\n",
        ),
        (
            "repro/sim/engine2.py",
            "def drive(sim):\n"
            "    event = sim._queue.pop_due(10.0)\n"
            "    return event\n",
        ),
    ],
)
def test_rl012_clean(tmp_path, relative, source):
    result = lint_snippet(tmp_path, relative, source, select=["RL012"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# RL019 — hot-path bus.emit must sit behind a wants()/active guard
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "relative, source",
    [
        # A bare emit constructs an event even when telemetry is off.
        (
            "repro/model/emitter.py",
            "def f(bus, ev):\n    bus.emit(ev)\n",
        ),
        # Aliasing the bound method does not launder the call.
        (
            "repro/model/alias.py",
            "def f(bus, ev):\n    emit = bus.emit\n    emit(ev)\n",
        ),
        # A non-guard condition is not a guard.
        (
            "repro/sim/loop2.py",
            "def f(bus, ev, x):\n    if x > 0:\n        bus.emit(ev)\n",
        ),
        # A guard that falls through (no early exit) protects nothing
        # after it.
        (
            "repro/model/fallthrough.py",
            "def f(bus, ev):\n"
            "    if not bus.active:\n"
            "        pass\n"
            "    bus.emit(ev)\n",
        ),
    ],
)
def test_rl019_fires(tmp_path, relative, source):
    result = lint_snippet(tmp_path, relative, source, select=["RL019"])
    assert "RL019" in codes(result)


@pytest.mark.parametrize(
    "relative, source",
    [
        # The canonical guarded-emit idiom.
        (
            "repro/model/guarded.py",
            "def f(bus, ev, T):\n"
            "    if bus.active and bus.wants(T):\n"
            "        bus.emit(ev)\n",
        ),
        # Opt-in events guard with wants_type.
        (
            "repro/model/optin.py",
            "def f(bus, ev, T):\n"
            "    if bus.active and bus.wants_type(T):\n"
            "        bus.emit(ev)\n",
        ),
        # The LoadBoard._announce shape: an early-return guard covers the
        # rest of the suite.
        (
            "repro/model/announce.py",
            "def f(bus, ev, T):\n"
            "    if bus is None or not bus.active or not bus.wants(T):\n"
            "        return\n"
            "    bus.emit(ev)\n",
        ),
        # The engine's tracing loop: an alias emit in the else-branch of
        # a trace_wanted test, nested in a loop.
        (
            "repro/sim/engine3.py",
            "def drive(bus, ev):\n"
            "    if not bus.trace_wanted:\n"
            "        pass\n"
            "    else:\n"
            "        emit = bus.emit\n"
            "        while True:\n"
            "            emit(ev)\n",
        ),
        # Deeper statements inherit the guard.
        (
            "repro/model/nested.py",
            "def f(bus, ev, T):\n"
            "    if bus.wants(T):\n"
            "        for _ in range(3):\n"
            "            bus.emit(ev)\n",
        ),
        # Outside the kernel/model scope the bus is free to emit.
        (
            "repro/telemetry/replayer.py",
            "def f(bus, ev):\n    bus.emit(ev)\n",
        ),
    ],
)
def test_rl019_clean(tmp_path, relative, source):
    result = lint_snippet(tmp_path, relative, source, select=["RL019"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# Engine behaviour around rule selection
# ----------------------------------------------------------------------


def test_select_runs_only_requested_rules(tmp_path):
    source = "import time\nt = time.time()\nfor x in {1, 2}:\n    pass\n"
    result = lint_snippet(tmp_path, "repro/sim/multi.py", source, select=["RL002"])
    assert codes(result) == ["RL002"]


def test_unknown_rule_code_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown rule code"):
        lint_snippet(tmp_path, "repro/sim/x.py", "X = 1\n", select=["RL999"])


def test_syntax_error_is_reported_not_raised(tmp_path):
    result = lint_snippet(tmp_path, "repro/sim/broken.py", "def f(:\n")
    assert result.exit_code == 2
    assert any("syntax error" in message for message in result.errors)
