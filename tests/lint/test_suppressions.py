"""Suppression-pragma behaviour: line pragmas, file pragmas, and typos."""

from __future__ import annotations

from repro.lint.engine import parse_suppressions

from tests.lint.util import codes, lint_snippet

KNOWN = ["RL001", "RL004", "RL009"]


def test_line_pragma_silences_only_that_line(tmp_path):
    source = (
        "def f(xs):\n"
        "    a = sum(xs)  # reprolint: disable=RL004\n"
        "    b = sum(xs)\n"
        "    return a + b\n"
    )
    result = lint_snippet(tmp_path, "repro/sim/stats.py", source, select=["RL004"])
    assert codes(result) == ["RL004"]
    assert result.violations[0].line == 3


def test_line_pragma_with_multiple_codes(tmp_path):
    source = (
        "import random\n"
        "def f(xs):\n"
        "    return sum(xs) + random.random()  # reprolint: disable=RL001,RL004\n"
    )
    result = lint_snippet(
        tmp_path, "repro/sim/stats.py", source, select=["RL001", "RL004"]
    )
    assert codes(result) == []


def test_line_pragma_does_not_silence_other_codes(tmp_path):
    source = (
        "import random\n"
        "def f(xs):\n"
        "    return sum(xs) + random.random()  # reprolint: disable=RL004\n"
    )
    result = lint_snippet(
        tmp_path, "repro/sim/stats.py", source, select=["RL001", "RL004"]
    )
    assert codes(result) == ["RL001"]


def test_disable_all_pragma(tmp_path):
    source = (
        "import random\n"
        "def f(xs):\n"
        "    return sum(xs) + random.random()  # reprolint: disable=all\n"
    )
    result = lint_snippet(
        tmp_path, "repro/sim/stats.py", source, select=["RL001", "RL004"]
    )
    assert codes(result) == []


def test_file_level_pragma(tmp_path):
    source = (
        "# reprolint: disable-file=RL009\n"
        "def f():\n"
        "    print('a')\n"
        "    print('b')\n"
    )
    result = lint_snippet(tmp_path, "repro/model/out.py", source, select=["RL009"])
    assert codes(result) == []


def test_unknown_pragma_code_reports_rl000(tmp_path):
    source = "def f(xs):\n    return sum(xs)  # reprolint: disable=RL9999\n"
    result = lint_snippet(tmp_path, "repro/sim/stats.py", source, select=["RL004"])
    # The typo'd pragma silences nothing AND is itself reported.
    assert sorted(codes(result)) == ["RL000", "RL004"]
    (rl000,) = [v for v in result.violations if v.code == "RL000"]
    assert "RL9999" in rl000.message
    assert result.exit_code == 1


def test_pragma_inside_string_literal_is_ignored():
    source = 'TEXT = "# reprolint: disable=RL004"\n'
    pragmas = parse_suppressions(source, KNOWN)
    assert pragmas.by_line == {}
    assert pragmas.file_level == set()
    assert pragmas.unknown == []


def test_parse_suppressions_table():
    source = (
        "# reprolint: disable-file=RL009\n"
        "x = 1  # reprolint: disable=RL001, RL004\n"
        "y = 2  # ordinary comment\n"
    )
    pragmas = parse_suppressions(source, KNOWN)
    assert pragmas.file_level == {"RL009"}
    assert pragmas.by_line == {2: {"RL001", "RL004"}}
    assert pragmas.silences("RL009", 3)
    assert pragmas.silences("RL001", 2)
    assert not pragmas.silences("RL001", 3)
