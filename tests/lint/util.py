"""Helpers for the reprolint test suite.

Fixture snippets are written into a temporary ``repro/`` package tree so
that :func:`repro.lint.engine.module_name_for` derives the same dotted
module names the rules scope on (``repro.sim.x``, ``repro.model.y``, ...)
without ever touching the real source tree.
"""

from __future__ import annotations

import pathlib
import textwrap
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import LintResult, lint_paths


def write_tree(root: pathlib.Path, files: Dict[str, str]) -> pathlib.Path:
    """Write ``{relative_path: source}`` under ``root/`` and return root.

    Sources are dedented, so fixture snippets can be indented naturally in
    the test code.
    """
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint_tree(
    root: pathlib.Path,
    files: Dict[str, str],
    *,
    select: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> LintResult:
    """Write *files* under *root* and lint the resulting tree."""
    write_tree(root, files)
    return lint_paths([root], select=select, flow=flow)


def lint_snippet(
    root: pathlib.Path,
    relative: str,
    source: str,
    *,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint a single fixture file at *relative* (e.g. ``repro/sim/x.py``)."""
    return lint_tree(root, {relative: source}, select=select)


def codes(result: LintResult) -> List[str]:
    """The violation codes of a result, in report order."""
    return [violation.code for violation in result.violations]
