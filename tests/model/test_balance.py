"""Unit tests for the load-balance monitor."""

import pytest

from repro.model.balance import BalanceMonitor
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy


class TestConstruction:
    def test_invalid_interval(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        with pytest.raises(ValueError):
            BalanceMonitor(system, sample_interval=0.0)


class TestSampling:
    def test_sample_count(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        monitor = BalanceMonitor(system, sample_interval=10.0)
        system.run(warmup=0.0, duration=500.0)
        assert monitor.qd.count == 50

    def test_summary_fields_consistent(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("BNQ"), seed=1)
        monitor = BalanceMonitor(system, sample_interval=5.0)
        system.run(warmup=0.0, duration=500.0)
        summary = monitor.summary()
        assert summary.samples == monitor.qd.count
        assert 0 <= summary.mean_qd <= summary.max_qd
        assert summary.mean_site_stddev >= 0
        assert "QD" in str(summary)

    def test_reset_truncates(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        monitor = BalanceMonitor(system, sample_interval=5.0)
        system.run(warmup=0.0, duration=200.0)
        monitor.reset()
        assert monitor.qd.count == 0

    def test_balancing_policy_reduces_qd(self, tiny_config):
        summaries = {}
        for policy in ("LOCAL", "BNQ"):
            system = DistributedDatabase(tiny_config, make_policy(policy), seed=2)
            monitor = BalanceMonitor(system, sample_interval=5.0)
            system.run(warmup=200.0, duration=1500.0)
            monitor_summary = monitor.summary()
            summaries[policy] = monitor_summary
        assert summaries["BNQ"].mean_qd < summaries["LOCAL"].mean_qd

    def test_informed_policy_balances_per_kind(self, tiny_config):
        # LERT should control the per-kind imbalance at least as well as
        # BNQ controls it (usually better).
        summaries = {}
        for policy in ("BNQ", "LERT"):
            system = DistributedDatabase(tiny_config, make_policy(policy), seed=3)
            monitor = BalanceMonitor(system, sample_interval=5.0)
            system.run(warmup=200.0, duration=2500.0)
            summaries[policy] = monitor.summary()
        lert = summaries["LERT"]
        bnq = summaries["BNQ"]
        assert (lert.mean_io_qd + lert.mean_cpu_qd) <= (
            bnq.mean_io_qd + bnq.mean_cpu_qd
        ) * 1.10
