"""Unit tests for the model configuration dataclasses."""

import dataclasses

import pytest

from repro.model.config import (
    DISK_PER_DISK,
    DISK_SHARED,
    ConfigError,
    NetworkSpec,
    QueryClassSpec,
    SiteSpec,
    SystemConfig,
    paper_classes,
    paper_defaults,
)


class TestQueryClassSpec:
    def test_valid(self):
        spec = QueryClassSpec("io", page_cpu_time=0.05, num_reads=20.0)
        assert spec.name == "io"

    def test_mean_service_demand(self):
        spec = QueryClassSpec("io", page_cpu_time=0.05, num_reads=20.0)
        assert spec.mean_service_demand(disk_time=1.0) == pytest.approx(21.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_cpu_time": 0.0},
            {"page_cpu_time": -1.0},
            {"num_reads": 0.5},
            {"result_fraction": -0.1},
            {"query_size": -5},
        ],
    )
    def test_invalid(self, kwargs):
        base = dict(page_cpu_time=0.05, num_reads=20.0)
        base.update(kwargs)
        with pytest.raises(ConfigError):
            QueryClassSpec("bad", **base)


class TestSiteSpec:
    def test_io_demand_per_disk(self):
        spec = SiteSpec(num_disks=2, disk_time=1.0)
        assert spec.io_demand_per_disk == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_disks": 0},
            {"disk_time": 0.0},
            {"disk_time_dev": 1.5},
            {"mpl": 0},
            {"think_time": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SiteSpec(**kwargs)


class TestNetworkSpec:
    def test_constant_mode(self):
        spec = NetworkSpec(msg_length=2.0)
        assert spec.msg_length == 2.0

    def test_linear_mode(self):
        spec = NetworkSpec(msg_length=None, msg_time=0.001, page_size=2048)
        assert spec.msg_length is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"msg_length": -1.0}, {"msg_time": -0.1}, {"page_size": 0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            NetworkSpec(**kwargs)


class TestSystemConfig:
    def test_paper_defaults_match_table7(self):
        config = paper_defaults()
        assert config.num_sites == 6
        assert config.site.num_disks == 2
        assert config.site.disk_time == 1.0
        assert config.site.disk_time_dev == 0.20
        assert config.site.mpl == 20
        assert config.site.think_time == 350.0
        assert config.class_probs == (0.5, 0.5)
        assert config.classes[0].page_cpu_time == 0.05
        assert config.classes[1].page_cpu_time == 1.0
        assert config.classes[0].num_reads == 20.0
        assert config.network.msg_length == 1.0

    def test_is_io_bound_rule(self):
        # Per-disk I/O demand is 0.5: class with cpu 0.05 is I/O-bound,
        # class with cpu 1.0 is CPU-bound; a 0.5 tie is CPU-bound (strict >).
        config = paper_defaults()
        assert config.is_io_bound(0.05)
        assert not config.is_io_bound(1.0)
        assert not config.is_io_bound(0.5)

    def test_class_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                num_sites=2,
                classes=paper_classes(),
                class_probs=(0.5, 0.6),
            )

    def test_probability_count_must_match_classes(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_sites=2, classes=paper_classes(), class_probs=(1.0,))

    def test_duplicate_class_names_rejected(self):
        dup = (
            QueryClassSpec("x", 0.05, 20.0),
            QueryClassSpec("x", 1.0, 20.0),
        )
        with pytest.raises(ConfigError):
            SystemConfig(num_sites=2, classes=dup, class_probs=(0.5, 0.5))

    def test_requires_at_least_one_class(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_sites=2, classes=(), class_probs=())

    def test_invalid_disk_organization(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                num_sites=2,
                classes=paper_classes(),
                class_probs=(0.5, 0.5),
                disk_organization="raid5",
            )

    def test_disk_organizations_accepted(self):
        for organization in (DISK_PER_DISK, DISK_SHARED):
            config = dataclasses.replace(
                paper_defaults(), disk_organization=organization
            )
            assert config.disk_organization == organization

    def test_class_index_lookup(self):
        config = paper_defaults()
        assert config.class_index("io") == 0
        assert config.class_index("cpu") == 1
        with pytest.raises(KeyError):
            config.class_index("nope")

    def test_mean_query_service_demand(self):
        config = paper_defaults()
        # 0.5 * 20*(1+0.05) + 0.5 * 20*(1+1.0) = 0.5*21 + 0.5*40 = 30.5,
        # the execution time the paper quotes in §5.2.
        assert config.mean_query_service_demand() == pytest.approx(30.5)

    def test_with_site_and_with_network(self):
        config = paper_defaults()
        changed = config.with_site(mpl=30).with_network(msg_length=2.0)
        assert changed.site.mpl == 30
        assert changed.network.msg_length == 2.0
        assert config.site.mpl == 20  # original untouched

    def test_frozen(self):
        config = paper_defaults()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.num_sites = 9
