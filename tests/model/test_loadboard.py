"""Unit tests for the global load board."""

import pytest

from repro.model.config import paper_defaults
from repro.model.loadboard import FrozenLoadView, LoadBoard
from repro.model.query import make_query


@pytest.fixture
def config():
    return paper_defaults()


def _query(config, class_index):
    return make_query(config, class_index, home_site=0, estimated_reads=5.0, created_at=0.0)


class TestLoadBoard:
    def test_starts_empty(self):
        board = LoadBoard(4)
        assert board.query_distribution() == [0, 0, 0, 0]
        assert board.total_queries == 0

    def test_register_by_boundness(self, config):
        board = LoadBoard(3)
        board.register(_query(config, 0), site=1)  # io-bound
        board.register(_query(config, 1), site=1)  # cpu-bound
        assert board.num_io_queries(1) == 1
        assert board.num_cpu_queries(1) == 1
        assert board.num_queries(1) == 2
        assert board.num_queries(0) == 0

    def test_deregister(self, config):
        board = LoadBoard(2)
        query = _query(config, 0)
        board.register(query, 0)
        board.deregister(query, 0)
        assert board.total_queries == 0

    def test_deregister_below_zero_raises(self, config):
        board = LoadBoard(2)
        with pytest.raises(ValueError):
            board.deregister(_query(config, 0), 0)
        with pytest.raises(ValueError):
            board.deregister(_query(config, 1), 1)

    def test_distribution_vector(self, config):
        board = LoadBoard(3)
        for site, count in ((0, 2), (2, 1)):
            for _ in range(count):
                board.register(_query(config, 0), site)
        assert board.query_distribution() == [2, 0, 1]

    def test_invalid_site_count(self):
        with pytest.raises(ValueError):
            LoadBoard(0)


class TestSnapshot:
    def test_snapshot_is_frozen(self, config):
        board = LoadBoard(2)
        board.register(_query(config, 0), 0)
        snapshot = board.snapshot()
        board.register(_query(config, 0), 0)
        assert board.num_io_queries(0) == 2
        assert snapshot.num_io_queries(0) == 1

    def test_snapshot_interface_parity(self, config):
        board = LoadBoard(2)
        board.register(_query(config, 0), 0)
        board.register(_query(config, 1), 1)
        snapshot = board.snapshot()
        for site in range(2):
            assert snapshot.num_queries(site) == board.num_queries(site)
            assert snapshot.num_io_queries(site) == board.num_io_queries(site)
            assert snapshot.num_cpu_queries(site) == board.num_cpu_queries(site)
        assert snapshot.query_distribution() == board.query_distribution()

    def test_frozen_view_direct_construction(self):
        view = FrozenLoadView((1, 0), (0, 2))
        assert view.num_queries(0) == 1
        assert view.num_queries(1) == 2
        assert view.query_distribution() == [1, 2]
