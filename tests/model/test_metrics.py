"""Unit tests for the metrics collector and results summary."""

import pytest

from repro.model.config import paper_defaults
from repro.model.metrics import MetricsCollector, summarize
from repro.model.query import make_query


def _completed_query(config, class_index, wait, service, remote=False):
    query = make_query(config, class_index, home_site=0, estimated_reads=5.0, created_at=0.0)
    query.execution_site = 1 if remote else 0
    query.service_acquired = service
    query.completed_at = wait + service
    return query


@pytest.fixture
def config():
    return paper_defaults()


class TestCollector:
    def test_record_accumulates(self, config):
        collector = MetricsCollector(config)
        collector.record(_completed_query(config, 0, wait=4.0, service=6.0))
        collector.record(_completed_query(config, 1, wait=8.0, service=2.0))
        assert collector.completions == 2
        assert collector.mean_waiting_time == pytest.approx(6.0)
        assert collector.mean_response_time == pytest.approx(10.0)

    def test_per_class_split(self, config):
        collector = MetricsCollector(config)
        collector.record(_completed_query(config, 0, wait=4.0, service=6.0))
        collector.record(_completed_query(config, 1, wait=8.0, service=2.0))
        assert collector.by_class_waiting[0].mean == pytest.approx(4.0)
        assert collector.by_class_waiting[1].mean == pytest.approx(8.0)

    def test_fairness_sign(self, config):
        collector = MetricsCollector(config)
        # io: normalized wait 4/6; cpu: 8/2 -> F = 0.667 - 4 < 0.
        collector.record(_completed_query(config, 0, wait=4.0, service=6.0))
        collector.record(_completed_query(config, 1, wait=8.0, service=2.0))
        assert collector.fairness == pytest.approx(4.0 / 6.0 - 4.0)

    def test_remote_fraction(self, config):
        collector = MetricsCollector(config)
        collector.record(_completed_query(config, 0, 1.0, 1.0, remote=True))
        collector.record(_completed_query(config, 0, 1.0, 1.0, remote=False))
        assert collector.remote_fraction == pytest.approx(0.5)

    def test_reset(self, config):
        collector = MetricsCollector(config)
        collector.record(_completed_query(config, 0, 1.0, 1.0))
        collector.reset()
        assert collector.completions == 0
        assert collector.mean_waiting_time == 0.0
        assert collector.remote_count == 0

    def test_fairness_requires_two_classes(self):
        import dataclasses

        from repro.model.config import QueryClassSpec, SystemConfig

        config = SystemConfig(
            num_sites=2,
            classes=(QueryClassSpec("only", 0.5, 10.0),),
            class_probs=(1.0,),
        )
        collector = MetricsCollector(config)
        with pytest.raises(ValueError):
            _ = collector.fairness


class TestSummarize:
    def test_summary_fields(self, config):
        collector = MetricsCollector(config)
        for _ in range(3):
            collector.record(_completed_query(config, 0, 2.0, 3.0, remote=True))
            collector.record(_completed_query(config, 1, 2.0, 3.0))
        results = summarize(
            collector,
            policy="TEST",
            subnet_utilization=0.4,
            cpu_utilization=0.6,
            disk_utilization=0.7,
            measured_time=1000.0,
        )
        assert results.policy == "TEST"
        assert results.mean_waiting_time == pytest.approx(2.0)
        assert results.completions == 6
        assert results.remote_fraction == pytest.approx(0.5)
        assert results.subnet_utilization == 0.4
        assert results.fairness is not None

    def test_summary_without_enough_data_for_ci(self, config):
        collector = MetricsCollector(config)
        collector.record(_completed_query(config, 0, 2.0, 3.0))
        results = summarize(collector, "TEST", 0.0, 0.0, 0.0, 10.0)
        assert results.waiting_ci is None

    def test_summary_with_ci(self, config):
        collector = MetricsCollector(config)
        for i in range(100):
            collector.record(_completed_query(config, 0, 2.0 + (i % 5) * 0.1, 3.0))
        results = summarize(collector, "TEST", 0.0, 0.0, 0.0, 10.0)
        assert results.waiting_ci is not None
        eps = 1e-9
        assert (
            results.waiting_ci.low - eps
            <= results.mean_waiting_time
            <= results.waiting_ci.high + eps
        )

    def test_str_rendering(self, config):
        collector = MetricsCollector(config)
        collector.record(_completed_query(config, 0, 2.0, 3.0))
        collector.record(_completed_query(config, 1, 2.0, 3.0))
        results = summarize(collector, "LERT", 0.33, 0.5, 0.6, 10.0)
        text = str(results)
        assert "LERT" in text
        assert "W=" in text
