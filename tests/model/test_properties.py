"""Property-based tests over randomized system configurations.

Hypothesis generates small-but-varied configs; every run of the full model
must satisfy the structural invariants regardless of parameters or policy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.config import NetworkSpec, QueryClassSpec, SiteSpec, SystemConfig
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy


@st.composite
def small_configs(draw):
    num_sites = draw(st.integers(min_value=1, max_value=4))
    num_disks = draw(st.integers(min_value=1, max_value=3))
    io_cpu = draw(st.floats(min_value=0.01, max_value=0.3))
    cpu_cpu = draw(st.floats(min_value=0.5, max_value=2.0))
    io_prob = draw(st.floats(min_value=0.1, max_value=0.9))
    mpl = draw(st.integers(min_value=1, max_value=5))
    think = draw(st.floats(min_value=10.0, max_value=120.0))
    msg_length = draw(st.floats(min_value=0.0, max_value=3.0))
    subnet = draw(st.sampled_from(["ring", "mesh"])) if num_sites > 1 else "ring"
    reads = draw(st.floats(min_value=1.0, max_value=10.0))
    return SystemConfig(
        num_sites=num_sites,
        site=SiteSpec(
            num_disks=num_disks,
            disk_time=1.0,
            disk_time_dev=0.2,
            mpl=mpl,
            think_time=think,
        ),
        classes=(
            QueryClassSpec("io", page_cpu_time=io_cpu, num_reads=reads),
            QueryClassSpec("cpu", page_cpu_time=cpu_cpu, num_reads=reads),
        ),
        class_probs=(io_prob, 1.0 - io_prob),
        network=NetworkSpec(msg_length=msg_length, subnet_kind=subnet),
    )


POLICIES = ("LOCAL", "BNQ", "BNQRD", "LERT", "RANDOM", "SQ2")


@settings(deadline=None, max_examples=25)
@given(small_configs(), st.sampled_from(POLICIES), st.integers(0, 1000))
def test_system_invariants_hold_for_any_config(config, policy, seed):
    system = DistributedDatabase(config, make_policy(policy), seed=seed)
    results = system.run(warmup=50.0, duration=400.0)

    # Counting invariants.
    population = config.num_sites * config.site.mpl
    assert 0 <= system.load_board.total_queries <= population
    assert results.completions >= 0

    # Physical bounds.
    assert 0.0 <= results.cpu_utilization <= 1.0 + 1e-9
    assert 0.0 <= results.disk_utilization <= 1.0 + 1e-9
    assert 0.0 <= results.subnet_utilization <= 1.0 + 1e-9
    assert 0.0 <= results.remote_fraction <= 1.0

    # Timing sanity: waiting is response minus service, so response bounds
    # waiting from above, and neither is negative in aggregate.
    assert results.mean_waiting_time >= -1e-9
    assert results.mean_response_time >= results.mean_waiting_time - 1e-9

    # LOCAL never touches the subnet.
    if policy == "LOCAL" or config.num_sites == 1:
        assert results.remote_fraction == 0.0


@settings(deadline=None, max_examples=10)
@given(small_configs(), st.integers(0, 1000))
def test_runs_are_reproducible_for_any_config(config, seed):
    a = DistributedDatabase(config, make_policy("LERT"), seed=seed)
    b = DistributedDatabase(config, make_policy("LERT"), seed=seed)
    ra = a.run(warmup=50.0, duration=300.0)
    rb = b.run(warmup=50.0, duration=300.0)
    assert ra.mean_waiting_time == rb.mean_waiting_time
    assert ra.completions == rb.completions
    assert ra.subnet_utilization == rb.subnet_utilization
