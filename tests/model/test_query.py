"""Unit tests for Query objects and their derived measures."""

import pytest

from repro.model.config import paper_defaults
from repro.model.query import Query, make_query


@pytest.fixture
def config():
    return paper_defaults()


class TestMakeQuery:
    def test_integer_rounding(self, config):
        query = make_query(config, 0, home_site=1, estimated_reads=7.6, created_at=0.0)
        assert query.actual_reads == 8
        assert query.estimated_reads == 7.6

    def test_minimum_one_read(self, config):
        query = make_query(config, 0, home_site=0, estimated_reads=0.01, created_at=0.0)
        assert query.actual_reads == 1

    def test_classification(self, config):
        io_query = make_query(config, 0, 0, 10.0, 0.0)
        cpu_query = make_query(config, 1, 0, 10.0, 0.0)
        assert io_query.io_bound
        assert not cpu_query.io_bound

    def test_unique_ids(self, config):
        a = make_query(config, 0, 0, 5.0, 0.0)
        b = make_query(config, 0, 0, 5.0, 0.0)
        assert a.qid != b.qid

    def test_truncation_mode(self, config):
        import dataclasses

        truncating = dataclasses.replace(config, integer_reads=False)
        query = make_query(truncating, 0, 0, 7.9, 0.0)
        assert query.actual_reads == 7


class TestEstimates:
    def test_cpu_demand_estimate(self, config):
        query = make_query(config, 1, 0, estimated_reads=10.0, created_at=0.0)
        # class "cpu": page_cpu_time = 1.0
        assert query.estimated_cpu_demand == pytest.approx(10.0)

    def test_io_demand_estimate(self, config):
        query = make_query(config, 0, 0, estimated_reads=10.0, created_at=0.0)
        assert query.estimated_io_demand(disk_time=1.0) == pytest.approx(10.0)

    def test_page_cpu_time_is_class_mean(self, config):
        query = make_query(config, 0, 0, 10.0, 0.0)
        assert query.page_cpu_time == 0.05


class TestDerivedMeasures:
    def _completed_query(self, config):
        query = make_query(config, 0, home_site=0, estimated_reads=5.0, created_at=10.0)
        query.allocated_at = 10.0
        query.execution_site = 2
        query.started_at = 11.0
        query.finished_at = 29.0
        query.completed_at = 30.0
        query.service_acquired = 12.0
        return query

    def test_response_time(self, config):
        query = self._completed_query(config)
        assert query.response_time == pytest.approx(20.0)

    def test_waiting_time(self, config):
        query = self._completed_query(config)
        assert query.waiting_time == pytest.approx(8.0)

    def test_normalized_waiting(self, config):
        query = self._completed_query(config)
        assert query.normalized_waiting_time == pytest.approx(8.0 / 12.0)

    def test_remote_flag(self, config):
        query = self._completed_query(config)
        assert query.remote
        query.execution_site = query.home_site
        assert not query.remote

    def test_incomplete_query_raises(self, config):
        query = make_query(config, 0, 0, 5.0, created_at=0.0)
        with pytest.raises(ValueError):
            _ = query.response_time

    def test_zero_service_normalized_is_zero(self, config):
        query = self._completed_query(config)
        query.service_acquired = 0.0
        assert query.normalized_waiting_time == 0.0
