"""Unit tests for the token-ring subnet model."""

import pytest

from repro.model.ring import Message, TokenRing
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


def _message(source, destination, transfer_time, log, tag):
    return Message(
        source=source,
        destination=destination,
        transfer_time=transfer_time,
        deliver=lambda: log.append((tag, None)),
        kind="query",
    )


class TestDelivery:
    def test_single_message_takes_transfer_time(self):
        sim = Simulator()
        ring = TokenRing(sim, 3)
        log = []
        message = Message(0, 1, 2.5, deliver=lambda: log.append(sim.now))
        ring.send(message)
        sim.run()
        assert log == [2.5]

    def test_messages_from_one_site_serialize(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        log = []
        for i in range(3):
            ring.send(Message(0, 1, 1.0, deliver=lambda i=i: log.append((i, sim.now))))
        sim.run()
        assert log == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_round_robin_alternates_between_sites(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        order = []
        for i in range(2):
            ring.send(Message(0, 1, 1.0, deliver=lambda i=i: order.append(f"s0-{i}")))
            ring.send(Message(1, 0, 1.0, deliver=lambda i=i: order.append(f"s1-{i}")))
        sim.run()
        assert order == ["s0-0", "s1-0", "s0-1", "s1-1"]

    def test_wakes_after_idle_period(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        log = []
        sim.schedule(
            10.0,
            lambda: ring.send(Message(0, 1, 1.0, deliver=lambda: log.append(sim.now))),
        )
        sim.run()
        assert log == [11.0]

    def test_two_batches_with_idle_gap(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        log = []
        ring.send(Message(0, 1, 1.0, deliver=lambda: log.append(sim.now)))
        sim.schedule(
            50.0,
            lambda: ring.send(Message(1, 0, 2.0, deliver=lambda: log.append(sim.now))),
        )
        sim.run()
        assert log == [1.0, 52.0]

    def test_zero_transfer_time_delivers_immediately(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        log = []
        ring.send(Message(0, 1, 0.0, deliver=lambda: log.append(sim.now)))
        sim.run()
        assert log == [0.0]


class TestStatistics:
    def test_utilization(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        ring.send(Message(0, 1, 3.0, deliver=lambda: None))
        sim.run(until=6.0)
        assert ring.utilization == pytest.approx(0.5)

    def test_message_and_byte_counters(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        for size in (100, 200):
            ring.send(Message(0, 1, 1.0, deliver=lambda: None, size_bytes=size))
        sim.run()
        assert ring.messages_delivered == 2
        assert ring.bytes_delivered == 300

    def test_latency_includes_queueing(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        for _ in range(2):
            ring.send(Message(0, 1, 2.0, deliver=lambda: None))
        sim.run()
        # First latency 2, second waits 2 then transfers 2 -> 4.
        assert ring.latencies.mean == pytest.approx(3.0)

    def test_pending_counts(self):
        sim = Simulator()
        ring = TokenRing(sim, 3)
        ring.send(Message(0, 1, 5.0, deliver=lambda: None))
        ring.send(Message(2, 1, 5.0, deliver=lambda: None))
        assert ring.pending_messages() == 2
        assert ring.pending_messages(2) == 1

    def test_reset_statistics(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        ring.send(Message(0, 1, 1.0, deliver=lambda: None))
        sim.run()
        ring.reset_statistics()
        assert ring.messages_delivered == 0
        assert ring.utilization == 0.0


class TestValidation:
    def test_invalid_sites_rejected(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        with pytest.raises(SimulationError):
            ring.send(Message(5, 0, 1.0, deliver=lambda: None))
        with pytest.raises(SimulationError):
            ring.send(Message(0, -1, 1.0, deliver=lambda: None))

    def test_negative_transfer_time_rejected(self):
        sim = Simulator()
        ring = TokenRing(sim, 2)
        with pytest.raises(SimulationError):
            ring.send(Message(0, 1, -1.0, deliver=lambda: None))

    def test_needs_at_least_one_site(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            TokenRing(sim, 0)
