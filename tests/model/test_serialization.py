"""Unit tests for config and result serialization."""

import dataclasses
import json

import pytest

from repro.model.config import ConfigError, NetworkSpec, paper_defaults
from repro.model.metrics import SystemResults
from repro.model.serialization import (
    FORMAT_VERSION,
    RESULTS_FORMAT_VERSION,
    averaged_results_from_dict,
    averaged_results_to_dict,
    config_from_dict,
    config_to_dict,
    interval_from_dict,
    interval_to_dict,
    load_config,
    results_from_dict,
    results_to_dict,
    save_config,
)
from repro.sim.stats import IntervalEstimate


def make_results(policy="LERT", fairness=0.15, with_ci=True):
    """A fully populated SystemResults for round-trip tests."""
    ci = (
        IntervalEstimate(mean=2.5, half_width=0.4, confidence=0.9, batches=16)
        if with_ci
        else None
    )
    return SystemResults(
        policy=policy,
        mean_waiting_time=2.5,
        mean_response_time=20.0,
        fairness=fairness,
        waiting_by_class=(1.5, 3.5),
        normalized_by_class=(0.4, 0.9),
        subnet_utilization=0.35,
        cpu_utilization=0.55,
        disk_utilization=0.45,
        completions=4321,
        remote_fraction=0.3,
        measured_time=2000.0,
        waiting_ci=ci,
    )


class TestRoundTrip:
    def test_paper_defaults_round_trip(self):
        config = paper_defaults()
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_linear_network_round_trip(self):
        config = dataclasses.replace(
            paper_defaults(),
            network=NetworkSpec(msg_length=None, msg_time=0.002, page_size=512),
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.network.msg_length is None

    def test_nondefault_everything(self, tiny_config):
        config = dataclasses.replace(
            tiny_config, disk_organization="shared", integer_reads=False
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_dict_is_json_compatible(self):
        payload = json.dumps(config_to_dict(paper_defaults()))
        assert "num_sites" in payload


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        config = paper_defaults(mpl=25)
        path = tmp_path / "config.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_config(path)


class TestValidation:
    def test_missing_key(self):
        data = config_to_dict(paper_defaults())
        del data["site"]
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_wrong_type(self):
        with pytest.raises(ConfigError):
            config_from_dict("not a dict")

    def test_unknown_version(self):
        data = config_to_dict(paper_defaults())
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_invalid_values_rejected_by_dataclasses(self):
        data = config_to_dict(paper_defaults())
        data["site"]["num_disks"] = 0
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_defaults_for_optional_keys(self):
        data = config_to_dict(paper_defaults())
        del data["disk_organization"]
        del data["integer_reads"]
        rebuilt = config_from_dict(data)
        assert rebuilt.disk_organization == "per_disk"
        assert rebuilt.integer_reads is True


class TestIntervalRoundTrip:
    def test_round_trip(self):
        estimate = IntervalEstimate(
            mean=1.25, half_width=0.5, confidence=0.95, batches=12
        )
        assert interval_from_dict(interval_to_dict(estimate)) == estimate

    def test_wrong_type(self):
        with pytest.raises(ConfigError):
            interval_from_dict("not a dict")

    def test_missing_key(self):
        data = interval_to_dict(
            IntervalEstimate(mean=1.0, half_width=0.1, confidence=0.9, batches=5)
        )
        del data["half_width"]
        with pytest.raises(ConfigError):
            interval_from_dict(data)


class TestResultsRoundTrip:
    def test_round_trip_with_ci(self):
        results = make_results()
        rebuilt = results_from_dict(results_to_dict(results))
        assert rebuilt == results
        assert rebuilt.waiting_ci == results.waiting_ci

    def test_round_trip_without_ci(self):
        results = make_results(with_ci=False)
        rebuilt = results_from_dict(results_to_dict(results))
        assert rebuilt == results
        assert rebuilt.waiting_ci is None

    def test_round_trip_null_fairness(self):
        results = make_results(fairness=None)
        rebuilt = results_from_dict(results_to_dict(results))
        assert rebuilt == results
        assert rebuilt.fairness is None

    def test_survives_json_round_trip(self):
        """Exact float equality through actual JSON text (cache contract)."""
        results = make_results()
        data = json.loads(json.dumps(results_to_dict(results)))
        assert results_from_dict(data) == results

    def test_real_simulation_results_round_trip(self, tiny_config):
        from repro.experiments.common import simulate
        from repro.experiments.runconfig import RunSettings

        settings = RunSettings(
            warmup=150.0, duration=600.0, replications=1, base_seed=42
        )
        run = simulate(tiny_config, "LOCAL", settings).per_replication[0]
        data = json.loads(json.dumps(results_to_dict(run)))
        assert results_from_dict(data) == run

    def test_wrong_type(self):
        with pytest.raises(ConfigError):
            results_from_dict(["not", "a", "dict"])

    def test_unknown_version(self):
        data = results_to_dict(make_results())
        data["format_version"] = RESULTS_FORMAT_VERSION + 1
        with pytest.raises(ConfigError):
            results_from_dict(data)

    def test_missing_key(self):
        data = results_to_dict(make_results())
        del data["mean_waiting_time"]
        with pytest.raises(ConfigError):
            results_from_dict(data)


class TestTracingSummariesRoundTrip:
    """`SystemResults.decisions` / `.spans` serialization (conditional)."""

    def _traced(self):
        from repro.telemetry.tracing import DecisionSummary, SpanSummary

        return dataclasses.replace(
            make_results(),
            decisions=DecisionSummary(
                count=7,
                mean_staleness=1.5,
                max_staleness=12.0,
                mean_regret=0.25,
                max_regret=3.5,
                total_regret=1.75,
                optimal_fraction=0.875,
            ),
            spans=SpanSummary(
                count=30,
                queries=7,
                unfinished=1,
                kinds=(("query", 7), ("queue", 7), ("service", 16)),
            ),
        )

    def test_round_trip_with_summaries(self):
        results = self._traced()
        rebuilt = results_from_dict(
            json.loads(json.dumps(results_to_dict(results)))
        )
        assert rebuilt == results
        assert rebuilt.decisions == results.decisions
        assert rebuilt.spans == results.spans

    def test_absent_keys_stay_absent(self):
        """Tracing-off payloads are byte-identical to pre-tracing ones."""
        data = results_to_dict(make_results())
        assert "decisions" not in data
        assert "spans" not in data
        rebuilt = results_from_dict(data)
        assert rebuilt.decisions is None
        assert rebuilt.spans is None

    def test_old_archives_still_load(self):
        """A payload written before the tracing fields deserializes."""
        data = results_to_dict(make_results())
        payload = json.loads(json.dumps(data))  # a frozen old archive
        assert results_from_dict(payload) == make_results()

    def test_summary_dict_helpers_round_trip(self):
        from repro.model.serialization import (
            decision_summary_from_dict,
            decision_summary_to_dict,
            span_summary_from_dict,
            span_summary_to_dict,
        )

        traced = self._traced()
        assert (
            decision_summary_from_dict(decision_summary_to_dict(traced.decisions))
            == traced.decisions
        )
        assert (
            span_summary_from_dict(span_summary_to_dict(traced.spans))
            == traced.spans
        )

    def test_summary_missing_key_rejected(self):
        from repro.model.serialization import (
            decision_summary_from_dict,
            decision_summary_to_dict,
        )

        data = decision_summary_to_dict(self._traced().decisions)
        del data["total_regret"]
        with pytest.raises(ConfigError):
            decision_summary_from_dict(data)


class TestAveragedResultsRoundTrip:
    def _averaged(self):
        from repro.experiments.common import average_results

        runs = [make_results(), make_results(fairness=0.25, with_ci=False)]
        return average_results("LERT", runs)

    def test_round_trip(self):
        averaged = self._averaged()
        rebuilt = averaged_results_from_dict(averaged_results_to_dict(averaged))
        assert rebuilt == averaged
        assert rebuilt.per_replication == averaged.per_replication

    def test_survives_json_round_trip(self):
        averaged = self._averaged()
        data = json.loads(json.dumps(averaged_results_to_dict(averaged)))
        assert averaged_results_from_dict(data) == averaged

    def test_wrong_type(self):
        with pytest.raises(ConfigError):
            averaged_results_from_dict(17)

    def test_unknown_version(self):
        data = averaged_results_to_dict(self._averaged())
        data["format_version"] = RESULTS_FORMAT_VERSION + 1
        with pytest.raises(ConfigError):
            averaged_results_from_dict(data)

    def test_missing_key(self):
        data = averaged_results_to_dict(self._averaged())
        del data["per_replication"]
        with pytest.raises(ConfigError):
            averaged_results_from_dict(data)
