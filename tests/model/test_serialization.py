"""Unit tests for config serialization."""

import dataclasses
import json

import pytest

from repro.model.config import ConfigError, NetworkSpec, paper_defaults
from repro.model.serialization import (
    FORMAT_VERSION,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


class TestRoundTrip:
    def test_paper_defaults_round_trip(self):
        config = paper_defaults()
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_linear_network_round_trip(self):
        config = dataclasses.replace(
            paper_defaults(),
            network=NetworkSpec(msg_length=None, msg_time=0.002, page_size=512),
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.network.msg_length is None

    def test_nondefault_everything(self, tiny_config):
        config = dataclasses.replace(
            tiny_config, disk_organization="shared", integer_reads=False
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_dict_is_json_compatible(self):
        payload = json.dumps(config_to_dict(paper_defaults()))
        assert "num_sites" in payload


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        config = paper_defaults(mpl=25)
        path = tmp_path / "config.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_config(path)


class TestValidation:
    def test_missing_key(self):
        data = config_to_dict(paper_defaults())
        del data["site"]
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_wrong_type(self):
        with pytest.raises(ConfigError):
            config_from_dict("not a dict")

    def test_unknown_version(self):
        data = config_to_dict(paper_defaults())
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_invalid_values_rejected_by_dataclasses(self):
        data = config_to_dict(paper_defaults())
        data["site"]["num_disks"] = 0
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_defaults_for_optional_keys(self):
        data = config_to_dict(paper_defaults())
        del data["disk_organization"]
        del data["integer_reads"]
        rebuilt = config_from_dict(data)
        assert rebuilt.disk_organization == "per_disk"
        assert rebuilt.integer_reads is True
