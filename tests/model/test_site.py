"""Unit tests for the DB-site service-center bundle."""

import dataclasses
import random

import pytest

from repro.model.config import DISK_PER_DISK, DISK_SHARED, paper_defaults
from repro.model.site import DBSite
from repro.sim.engine import Simulator


class TestStructure:
    def test_per_disk_organization_builds_separate_queues(self):
        sim = Simulator()
        site = DBSite(sim, paper_defaults(), index=0)
        assert len(site.disks) == 2
        assert all(d.servers == 1 for d in site.disks)

    def test_shared_organization_builds_one_multiserver(self):
        sim = Simulator()
        config = dataclasses.replace(paper_defaults(), disk_organization=DISK_SHARED)
        site = DBSite(sim, config, index=0)
        assert len(site.disks) == 1
        assert site.disks[0].servers == 2

    def test_single_disk_site(self):
        sim = Simulator()
        config = paper_defaults().with_site(num_disks=1)
        site = DBSite(sim, config, index=0)
        assert len(site.disks) == 1


class TestService:
    def test_disk_service_spreads_over_disks(self):
        sim = Simulator()
        site = DBSite(sim, paper_defaults(), index=0)
        rng = random.Random(0)

        def reader():
            for _ in range(60):
                yield site.disk_service(0.1, rng)

        sim.launch(reader())
        sim.run()
        counts = [d.completions for d in site.disks]
        assert sum(counts) == 60
        assert all(c > 10 for c in counts), f"unbalanced routing: {counts}"

    def test_cpu_service(self):
        sim = Simulator()
        site = DBSite(sim, paper_defaults(), index=0)

        def worker():
            yield site.cpu_service(2.0)

        sim.launch(worker())
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert site.cpu.completions == 1


class TestStatistics:
    def test_disk_utilization_average(self):
        sim = Simulator()
        site = DBSite(sim, paper_defaults(), index=0)
        rng = random.Random(1)

        def reader():
            for _ in range(10):
                yield site.disk_service(1.0, rng)

        sim.launch(reader())
        sim.run()
        # One reader: total busy time 10 over elapsed 10, split over 2 disks.
        assert site.disk_utilization == pytest.approx(0.5)

    def test_reset_statistics(self):
        sim = Simulator()
        site = DBSite(sim, paper_defaults(), index=0)
        rng = random.Random(2)

        def reader():
            yield site.disk_service(1.0, rng)
            yield site.cpu_service(1.0)

        sim.launch(reader())
        sim.run()
        site.reset_statistics()
        assert site.disk_completions == 0
        assert site.cpu.completions == 0
