"""Unit tests for the subnet abstraction and the point-to-point mesh."""

import pytest

from repro.model.config import paper_defaults
from repro.model.ring import Message, TokenRing
from repro.model.subnet import (
    SUBNET_MESH,
    SUBNET_RING,
    PointToPointNetwork,
    build_subnet,
)
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


class TestBuildSubnet:
    def test_ring(self):
        sim = Simulator()
        assert isinstance(build_subnet(SUBNET_RING, sim, 3), TokenRing)

    def test_mesh(self):
        sim = Simulator()
        assert isinstance(build_subnet(SUBNET_MESH, sim, 3), PointToPointNetwork)

    def test_unknown(self):
        with pytest.raises(SimulationError):
            build_subnet("carrier-pigeon", Simulator(), 3)


class TestMeshDelivery:
    def test_single_message(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 3)
        log = []
        mesh.send(Message(0, 1, 2.0, deliver=lambda: log.append(sim.now)))
        sim.run()
        assert log == [2.0]

    def test_same_link_serializes(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 2)
        log = []
        for i in range(3):
            mesh.send(Message(0, 1, 1.0, deliver=lambda i=i: log.append((i, sim.now))))
        sim.run()
        assert log == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_different_links_run_in_parallel(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 3)
        log = []
        mesh.send(Message(0, 1, 5.0, deliver=lambda: log.append(("a", sim.now))))
        mesh.send(Message(2, 1, 5.0, deliver=lambda: log.append(("b", sim.now))))
        mesh.send(Message(0, 2, 5.0, deliver=lambda: log.append(("c", sim.now))))
        sim.run()
        assert [t for _, t in log] == [5.0, 5.0, 5.0]

    def test_opposite_directions_are_separate_links(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 2)
        log = []
        mesh.send(Message(0, 1, 4.0, deliver=lambda: log.append(sim.now)))
        mesh.send(Message(1, 0, 4.0, deliver=lambda: log.append(sim.now)))
        sim.run()
        assert log == [4.0, 4.0]

    def test_rejects_self_link(self):
        mesh = PointToPointNetwork(Simulator(), 3)
        with pytest.raises(SimulationError):
            mesh.send(Message(1, 1, 1.0, deliver=lambda: None))

    def test_rejects_invalid_sites(self):
        mesh = PointToPointNetwork(Simulator(), 2)
        with pytest.raises(SimulationError):
            mesh.send(Message(5, 0, 1.0, deliver=lambda: None))


class TestMeshStatistics:
    def test_utilization_counts_all_links(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 2)  # 2 directed links
        mesh.send(Message(0, 1, 3.0, deliver=lambda: None))
        sim.run(until=6.0)
        # One link busy 3 of 6 units; the other idle: (3/6)/2 = 0.25.
        assert mesh.utilization == pytest.approx(0.25)

    def test_counters(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 3)
        mesh.send(Message(0, 1, 1.0, deliver=lambda: None, size_bytes=10))
        mesh.send(Message(1, 2, 1.0, deliver=lambda: None, size_bytes=20))
        sim.run()
        assert mesh.messages_delivered == 2
        assert mesh.bytes_delivered == 30

    def test_latency_includes_link_queueing(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 2)
        for _ in range(2):
            mesh.send(Message(0, 1, 2.0, deliver=lambda: None))
        sim.run()
        assert mesh.latencies.mean == pytest.approx(3.0)

    def test_reset_statistics(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 2)
        mesh.send(Message(0, 1, 2.0, deliver=lambda: None))
        sim.run()
        mesh.reset_statistics()
        assert mesh.messages_delivered == 0
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert mesh.utilization == pytest.approx(0.0)

    def test_pending(self):
        sim = Simulator()
        mesh = PointToPointNetwork(sim, 2)
        mesh.send(Message(0, 1, 10.0, deliver=lambda: None))
        mesh.send(Message(0, 1, 10.0, deliver=lambda: None))
        assert mesh.pending_messages() == 2
        assert mesh.pending_messages(0) == 2
        assert mesh.pending_messages(1) == 0


class TestEndToEnd:
    def test_system_runs_on_mesh(self, tiny_config):
        config = tiny_config.with_network(subnet_kind="mesh")
        system = DistributedDatabase(config, make_policy("LERT"), seed=1)
        results = system.run(warmup=100.0, duration=600.0)
        assert results.completions > 20
        assert results.remote_fraction > 0

    def test_mesh_beats_ring_when_ring_congested(self):
        # Large message times congest the shared ring badly; the mesh
        # shrugs them off.
        waits = {}
        for kind in ("ring", "mesh"):
            config = paper_defaults(num_sites=8, msg_length=3.0).with_network(
                subnet_kind=kind
            )
            system = DistributedDatabase(config, make_policy("BNQ"), seed=2)
            waits[kind] = system.run(500.0, 2500.0).mean_waiting_time
        assert waits["mesh"] < waits["ring"]

    def test_config_validation(self):
        with pytest.raises(Exception):
            paper_defaults().with_network(subnet_kind="bus")

    def test_serialization_round_trip_with_mesh(self):
        from repro.model.serialization import config_from_dict, config_to_dict

        config = paper_defaults().with_network(subnet_kind="mesh")
        assert config_from_dict(config_to_dict(config)) == config
