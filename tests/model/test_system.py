"""Integration-level tests of the assembled DistributedDatabase."""

import dataclasses

import pytest

from repro.model.config import NetworkSpec, paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.registry import available_policies, make_policy


class TestRunBasics:
    @pytest.mark.parametrize("policy", ["LOCAL", "RANDOM", "BNQ", "BNQRD", "LERT"])
    def test_every_policy_completes_queries(self, tiny_config, policy):
        system = DistributedDatabase(tiny_config, make_policy(policy), seed=1)
        results = system.run(warmup=200.0, duration=800.0)
        assert results.completions > 50
        assert results.mean_waiting_time >= 0.0
        assert results.mean_response_time > 0.0

    def test_local_policy_never_uses_network(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        results = system.run(warmup=100.0, duration=500.0)
        assert results.subnet_utilization == 0.0
        assert results.remote_fraction == 0.0

    def test_dynamic_policy_uses_network(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("BNQ"), seed=1)
        results = system.run(warmup=100.0, duration=500.0)
        assert results.remote_fraction > 0.0
        assert results.subnet_utilization > 0.0

    def test_same_seed_reproduces_exactly(self, tiny_config):
        a = DistributedDatabase(tiny_config, make_policy("LERT"), seed=5)
        b = DistributedDatabase(tiny_config, make_policy("LERT"), seed=5)
        ra = a.run(warmup=100.0, duration=500.0)
        rb = b.run(warmup=100.0, duration=500.0)
        assert ra.mean_waiting_time == rb.mean_waiting_time
        assert ra.completions == rb.completions

    def test_different_seeds_differ(self, tiny_config):
        a = DistributedDatabase(tiny_config, make_policy("LERT"), seed=5)
        b = DistributedDatabase(tiny_config, make_policy("LERT"), seed=6)
        assert (
            a.run(100.0, 500.0).mean_waiting_time
            != b.run(100.0, 500.0).mean_waiting_time
        )

    def test_invalid_run_arguments(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        with pytest.raises(ValueError):
            system.run(warmup=-1.0, duration=10.0)
        with pytest.raises(ValueError):
            system.run(warmup=0.0, duration=0.0)

    def test_single_site_system_degenerates_to_local(self, tiny_config):
        config = dataclasses.replace(tiny_config, num_sites=1)
        system = DistributedDatabase(config, make_policy("LERT"), seed=1)
        results = system.run(warmup=100.0, duration=400.0)
        assert results.remote_fraction == 0.0


class TestAccountingInvariants:
    def test_load_board_consistent_with_population(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LERT"), seed=2)
        system.run(warmup=100.0, duration=500.0)
        # Committed queries can never exceed the closed population.
        population = tiny_config.num_sites * tiny_config.site.mpl
        assert 0 <= system.load_board.total_queries <= population

    def test_waiting_is_response_minus_service(self, tiny_config):
        # Captured per query via the metrics identity: W mean = RT mean -
        # mean service acquired.  Verify on aggregate tallies.
        system = DistributedDatabase(tiny_config, make_policy("BNQ"), seed=3)
        results = system.run(warmup=100.0, duration=600.0)
        assert results.mean_waiting_time < results.mean_response_time

    def test_utilizations_legal(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LERT"), seed=4)
        results = system.run(warmup=100.0, duration=600.0)
        assert 0.0 <= results.cpu_utilization <= 1.0
        assert 0.0 <= results.disk_utilization <= 1.0
        assert 0.0 <= results.subnet_utilization <= 1.0

    def test_policy_choosing_invalid_site_rejected(self, tiny_config):
        class BrokenPolicy(type(make_policy("LOCAL"))):
            name = "BROKEN"

            def select(self, query, view):
                return 99

        system = DistributedDatabase(tiny_config, BrokenPolicy(), seed=1)
        with pytest.raises(ValueError, match="invalid site"):
            system.run(warmup=10.0, duration=50.0)


class TestMessageCostModels:
    def test_constant_msg_length(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        query, _ = system.workload.new_query(0, 0, 1)
        assert system.estimated_transfer_time(query) == 1.0
        assert system.estimated_return_time(query) == 1.0

    def test_linear_cost_model(self, tiny_config):
        config = dataclasses.replace(
            tiny_config,
            network=NetworkSpec(msg_length=None, msg_time=0.001, page_size=1000),
        )
        system = DistributedDatabase(config, make_policy("LOCAL"), seed=1)
        query, _ = system.workload.new_query(0, 0, 1)
        assert system.estimated_transfer_time(query) == pytest.approx(
            query.spec.query_size * 0.001
        )
        expected_return = (
            query.spec.result_fraction * query.estimated_reads * 1000 * 0.001
        )
        assert system.estimated_return_time(query) == pytest.approx(expected_return)

    def test_linear_model_runs_end_to_end(self, tiny_config):
        config = dataclasses.replace(
            tiny_config,
            network=NetworkSpec(msg_length=None, msg_time=0.0005, page_size=2048),
        )
        system = DistributedDatabase(config, make_policy("LERT"), seed=1)
        results = system.run(warmup=100.0, duration=500.0)
        assert results.completions > 0


class TestRegistry:
    def test_paper_policies_available(self):
        names = available_policies()
        for required in ("LOCAL", "BNQ", "BNQRD", "LERT", "RANDOM", "LERT-MVA"):
            assert required in names

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("NOPE")

    def test_case_insensitive(self):
        assert make_policy("lert").name == "LERT"
