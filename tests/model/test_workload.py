"""Unit tests for the workload generator."""

import dataclasses

import pytest

from repro.model.config import paper_defaults
from repro.model.workload import WorkloadGenerator
from repro.sim.engine import Simulator


@pytest.fixture
def generator():
    return WorkloadGenerator(Simulator(seed=3), paper_defaults())


class TestQueryCreation:
    def test_class_mix_matches_probability(self, generator):
        classes = [
            generator.new_query(0, 0, serial)[0].class_index
            for serial in range(4000)
        ]
        io_fraction = classes.count(0) / len(classes)
        assert io_fraction == pytest.approx(0.5, abs=0.03)

    def test_skewed_class_mix(self):
        config = dataclasses.replace(paper_defaults(), class_probs=(0.8, 0.2))
        generator = WorkloadGenerator(Simulator(seed=4), config)
        classes = [
            generator.new_query(0, 0, serial)[0].class_index
            for serial in range(4000)
        ]
        assert classes.count(0) / len(classes) == pytest.approx(0.8, abs=0.03)

    def test_reads_mean_matches_spec(self, generator):
        reads = [
            generator.new_query(0, 0, serial)[0].estimated_reads
            for serial in range(4000)
        ]
        assert sum(reads) / len(reads) == pytest.approx(20.0, rel=0.06)

    def test_same_seed_same_workload(self):
        config = paper_defaults()
        a = WorkloadGenerator(Simulator(seed=9), config)
        b = WorkloadGenerator(Simulator(seed=9), config)
        for serial in range(50):
            qa, _ = a.new_query(2, 1, serial)
            qb, _ = b.new_query(2, 1, serial)
            assert qa.class_index == qb.class_index
            assert qa.estimated_reads == qb.estimated_reads

    def test_per_query_stream_is_deterministic(self):
        # The stream handed out with a query depends only on (site,
        # terminal, serial) and the master seed — not on consumption of
        # other streams.  This is the common-random-numbers guarantee.
        config = paper_defaults()
        a = WorkloadGenerator(Simulator(seed=9), config)
        b = WorkloadGenerator(Simulator(seed=9), config)
        _, rng_a = a.new_query(1, 2, 3)
        # b consumes unrelated queries first.
        for serial in range(10):
            b.new_query(0, 0, serial)
        _, rng_b = b.new_query(1, 2, 3)
        assert [rng_a.random() for _ in range(5)] == [
            rng_b.random() for _ in range(5)
        ]

    def test_home_site_recorded(self, generator):
        query, _ = generator.new_query(4, 0, 1)
        assert query.home_site == 4


class TestServiceDraws:
    def test_disk_time_within_band(self, generator):
        rng = generator.sim.rng.stream("test")
        samples = [generator.disk_time(rng) for _ in range(2000)]
        assert all(0.8 <= s <= 1.2 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.01)

    def test_disk_time_degenerate_without_deviation(self):
        config = paper_defaults().with_site(disk_time_dev=0.0)
        generator = WorkloadGenerator(Simulator(seed=1), config)
        rng = generator.sim.rng.stream("test")
        assert generator.disk_time(rng) == 1.0

    def test_think_time_exponential_mean(self, generator):
        rng = generator.sim.rng.stream("think-test")
        samples = [generator.think_time(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(350.0, rel=0.05)

    def test_zero_think_time(self):
        config = paper_defaults().with_site(think_time=0.0)
        generator = WorkloadGenerator(Simulator(seed=1), config)
        rng = generator.sim.rng.stream("t")
        assert generator.think_time(rng) == 0.0

    def test_cpu_burst_mean_per_class(self, generator):
        rng = generator.sim.rng.stream("cpu-test")
        query, _ = generator.new_query(0, 0, 1)
        bursts = [generator.cpu_burst(query, rng) for _ in range(20000)]
        assert sum(bursts) / len(bursts) == pytest.approx(
            query.spec.page_cpu_time, rel=0.05
        )


class TestClassSampling:
    """Regression: no silent rounding absorption at ``cumulative[-1]``.

    ``SystemConfig`` rejects class probabilities whose sum is off by more
    than 1e-9, and ``_sample_class`` falls through to the last class for
    the (measure-zero) draws at or beyond the final threshold — so the
    generator never patches the cumulative vector back to exactly 1.0.
    """

    class _StubRng:
        """Returns a fixed sequence of uniform draws."""

        def __init__(self, values):
            self._values = iter(values)

        def random(self):
            return next(self._values)

    def test_cumulative_probs_are_the_true_partial_sums(self):
        # Three classes at 1/3 each sum to 0.999... within 1e-9; the
        # cumulative vector keeps the true partial sums (no patching).
        third = 1.0 / 3.0
        config = dataclasses.replace(
            paper_defaults(),
            classes=(
                paper_defaults().classes[0],
                paper_defaults().classes[1],
                dataclasses.replace(paper_defaults().classes[1], name="mid"),
            ),
            class_probs=(third, third, third),
        )
        generator = WorkloadGenerator(Simulator(seed=1), config)
        assert generator._cumulative_probs == (third, 2 * third, 3 * third)

    def test_draw_beyond_last_threshold_falls_through_to_last_class(self):
        third = 1.0 / 3.0
        config = dataclasses.replace(
            paper_defaults(),
            classes=(
                paper_defaults().classes[0],
                paper_defaults().classes[1],
                dataclasses.replace(paper_defaults().classes[1], name="mid"),
            ),
            class_probs=(third, third, third),
        )
        generator = WorkloadGenerator(Simulator(seed=1), config)
        # 3 * (1/3) < 1.0 in floats: a draw in the sliver between the
        # last threshold and 1.0 must land in the last class, not crash.
        assert 3 * third < 1.0 or 3 * third == 1.0
        sliver = self._StubRng([0.9999999999999999])
        assert generator._sample_class(sliver) == 2

    def test_draws_inside_bands_pick_the_matching_class(self):
        generator = WorkloadGenerator(Simulator(seed=1), paper_defaults())
        assert generator._sample_class(self._StubRng([0.25])) == 0
        assert generator._sample_class(self._StubRng([0.75])) == 1

    def test_bad_probability_sum_is_rejected_at_config_time(self):
        # The guard lives in SystemConfig now, not in the generator.
        from repro.model.config import ConfigError

        with pytest.raises(ConfigError, match="sum to 1"):
            dataclasses.replace(paper_defaults(), class_probs=(0.5, 0.501))
