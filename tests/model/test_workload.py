"""Unit tests for the workload generator."""

import dataclasses

import pytest

from repro.model.config import paper_defaults
from repro.model.workload import WorkloadGenerator
from repro.sim.engine import Simulator


@pytest.fixture
def generator():
    return WorkloadGenerator(Simulator(seed=3), paper_defaults())


class TestQueryCreation:
    def test_class_mix_matches_probability(self, generator):
        classes = [
            generator.new_query(0, 0, serial)[0].class_index
            for serial in range(4000)
        ]
        io_fraction = classes.count(0) / len(classes)
        assert io_fraction == pytest.approx(0.5, abs=0.03)

    def test_skewed_class_mix(self):
        config = dataclasses.replace(paper_defaults(), class_probs=(0.8, 0.2))
        generator = WorkloadGenerator(Simulator(seed=4), config)
        classes = [
            generator.new_query(0, 0, serial)[0].class_index
            for serial in range(4000)
        ]
        assert classes.count(0) / len(classes) == pytest.approx(0.8, abs=0.03)

    def test_reads_mean_matches_spec(self, generator):
        reads = [
            generator.new_query(0, 0, serial)[0].estimated_reads
            for serial in range(4000)
        ]
        assert sum(reads) / len(reads) == pytest.approx(20.0, rel=0.06)

    def test_same_seed_same_workload(self):
        config = paper_defaults()
        a = WorkloadGenerator(Simulator(seed=9), config)
        b = WorkloadGenerator(Simulator(seed=9), config)
        for serial in range(50):
            qa, _ = a.new_query(2, 1, serial)
            qb, _ = b.new_query(2, 1, serial)
            assert qa.class_index == qb.class_index
            assert qa.estimated_reads == qb.estimated_reads

    def test_per_query_stream_is_deterministic(self):
        # The stream handed out with a query depends only on (site,
        # terminal, serial) and the master seed — not on consumption of
        # other streams.  This is the common-random-numbers guarantee.
        config = paper_defaults()
        a = WorkloadGenerator(Simulator(seed=9), config)
        b = WorkloadGenerator(Simulator(seed=9), config)
        _, rng_a = a.new_query(1, 2, 3)
        # b consumes unrelated queries first.
        for serial in range(10):
            b.new_query(0, 0, serial)
        _, rng_b = b.new_query(1, 2, 3)
        assert [rng_a.random() for _ in range(5)] == [
            rng_b.random() for _ in range(5)
        ]

    def test_home_site_recorded(self, generator):
        query, _ = generator.new_query(4, 0, 1)
        assert query.home_site == 4


class TestServiceDraws:
    def test_disk_time_within_band(self, generator):
        rng = generator.sim.rng.stream("test")
        samples = [generator.disk_time(rng) for _ in range(2000)]
        assert all(0.8 <= s <= 1.2 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.01)

    def test_disk_time_degenerate_without_deviation(self):
        config = paper_defaults().with_site(disk_time_dev=0.0)
        generator = WorkloadGenerator(Simulator(seed=1), config)
        rng = generator.sim.rng.stream("test")
        assert generator.disk_time(rng) == 1.0

    def test_think_time_exponential_mean(self, generator):
        rng = generator.sim.rng.stream("think-test")
        samples = [generator.think_time(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(350.0, rel=0.05)

    def test_zero_think_time(self):
        config = paper_defaults().with_site(think_time=0.0)
        generator = WorkloadGenerator(Simulator(seed=1), config)
        rng = generator.sim.rng.stream("t")
        assert generator.think_time(rng) == 0.0

    def test_cpu_burst_mean_per_class(self, generator):
        rng = generator.sim.rng.stream("cpu-test")
        query, _ = generator.new_query(0, 0, 1)
        bursts = [generator.cpu_burst(query, rng) for _ in range(20000)]
        assert sum(bursts) / len(bursts) == pytest.approx(
            query.spec.page_cpu_time, rel=0.05
        )
