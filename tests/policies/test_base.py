"""Unit tests for the SelectSite loop (paper Figure 3 semantics).

Uses a stub system so site costs can be scripted exactly.
"""

import pytest

from repro.model.config import paper_defaults
from repro.model.query import make_query
from repro.model.view import SystemView
from repro.policies.base import CostBasedPolicy


class StubSystem:
    """Minimal system facade: config + candidate sites."""

    def __init__(self, num_sites=4):
        self.config = paper_defaults(num_sites=num_sites)
        self._candidates = None

    def candidate_sites(self, query):
        if self._candidates is not None:
            return self._candidates
        return range(self.config.num_sites)


class ScriptedPolicy(CostBasedPolicy):
    """Costs come from a dict; records the order sites were probed."""

    name = "SCRIPTED"

    def __init__(self, costs):
        super().__init__()
        self.costs = costs
        self.probes = []

    def site_cost(self, query, site):
        self.probes.append(site)
        return self.costs[site]


def _query(system):
    return make_query(system.config, 0, home_site=0, estimated_reads=5.0, created_at=0.0)


class TestFigure3Semantics:
    def test_picks_global_minimum(self):
        system = StubSystem()
        policy = ScriptedPolicy({0: 5.0, 1: 3.0, 2: 1.0, 3: 4.0})
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 2

    def test_arrival_site_wins_ties(self):
        # Strict < in Figure 3: equal-cost remote sites never displace home.
        system = StubSystem()
        policy = ScriptedPolicy({0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0})
        policy.bind(system)
        for _ in range(8):
            assert policy.select(_query(system), SystemView(system, 0)) == 0

    def test_remote_ties_rotate_round_robin(self):
        # Two equally attractive remote sites should both get picked over a
        # sequence of decisions thanks to the rotating scan start.
        system = StubSystem()
        policy = ScriptedPolicy({0: 9.0, 1: 1.0, 2: 1.0, 3: 9.0})
        policy.bind(system)
        picks = {policy.select(_query(system), SystemView(system, 0)) for _ in range(8)}
        assert picks == {1, 2}

    def test_arrival_site_probed_first(self):
        system = StubSystem()
        policy = ScriptedPolicy({0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0})
        policy.bind(system)
        policy.select(_query(system), SystemView(system, 2))
        assert policy.probes[0] == 2

    def test_candidate_restriction(self):
        system = StubSystem()
        system._candidates = (1, 3)
        policy = ScriptedPolicy({0: 0.0, 1: 5.0, 2: 0.0, 3: 4.0})
        policy.bind(system)
        # Sites 0 and 2 are cheapest but not candidates.
        assert policy.select(_query(system), SystemView(system, 0)) == 3

    def test_arrival_not_candidate(self):
        system = StubSystem()
        system._candidates = (1, 2)
        policy = ScriptedPolicy({1: 7.0, 2: 4.0})
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 2

    def test_single_candidate_short_circuit(self):
        system = StubSystem()
        system._candidates = [0]
        policy = ScriptedPolicy({})
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 0
        assert policy.probes == []  # no cost evaluation needed

    def test_no_candidates_raises(self):
        system = StubSystem()
        system._candidates = ()
        policy = ScriptedPolicy({})
        policy.bind(system)
        with pytest.raises(RuntimeError):
            policy.select(_query(system), SystemView(system, 0))

    def test_unbound_policy_raises(self):
        policy = ScriptedPolicy({})
        with pytest.raises(RuntimeError):
            _ = policy.loads
