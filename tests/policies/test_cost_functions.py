"""Unit tests for the paper's cost functions (Figures 4, 5, 6).

A stub system provides a scripted load board so each cost function's
arithmetic can be checked against hand computation.
"""

import pytest

from repro.model.config import paper_defaults
from repro.model.loadboard import FrozenLoadView
from repro.model.query import make_query
from repro.model.view import SystemView
from repro.policies.bnq import BNQPolicy
from repro.policies.bnqrd import BNQRDPolicy
from repro.policies.lert import LERTPolicy
from repro.policies.local import LocalPolicy
from repro.policies.random_policy import RandomPolicy


class StubSystem:
    def __init__(self, io_counts, cpu_counts, num_sites=None, msg_length=1.0):
        self.config = paper_defaults(
            num_sites=num_sites or len(io_counts), msg_length=msg_length
        )
        self.load_view = FrozenLoadView(io_counts, cpu_counts)

    def candidate_sites(self, query):
        return range(self.config.num_sites)

    def estimated_transfer_time(self, query):
        return self.config.network.msg_length

    def estimated_return_time(self, query):
        return self.config.network.msg_length


def _io_query(system, reads=10.0):
    return make_query(system.config, 0, home_site=0, estimated_reads=reads, created_at=0.0)


def _cpu_query(system, reads=10.0):
    return make_query(system.config, 1, home_site=0, estimated_reads=reads, created_at=0.0)


class TestBNQ:
    def test_cost_is_total_count(self):
        system = StubSystem(io_counts=(2, 0, 1), cpu_counts=(1, 3, 0))
        policy = BNQPolicy()
        policy.bind(system)
        query = _io_query(system)
        assert policy.site_cost(query, 0) == 3
        assert policy.site_cost(query, 1) == 3
        assert policy.site_cost(query, 2) == 1

    def test_selects_least_loaded(self):
        system = StubSystem(io_counts=(2, 0, 1), cpu_counts=(1, 3, 0))
        policy = BNQPolicy()
        policy.bind(system)
        assert policy.select(_io_query(system), SystemView(system, 0)) == 2


class TestBNQRD:
    def test_io_query_counts_io_load_only(self):
        system = StubSystem(io_counts=(5, 1, 3), cpu_counts=(0, 9, 0))
        policy = BNQRDPolicy()
        policy.bind(system)
        query = _io_query(system)
        assert policy.is_io_bound(query)
        assert policy.site_cost(query, 0) == 5
        assert policy.site_cost(query, 1) == 1

    def test_cpu_query_counts_cpu_load_only(self):
        system = StubSystem(io_counts=(9, 9, 9), cpu_counts=(2, 0, 1))
        policy = BNQRDPolicy()
        policy.bind(system)
        query = _cpu_query(system)
        assert not policy.is_io_bound(query)
        assert policy.site_cost(query, 1) == 0

    def test_classification_uses_per_disk_demand(self):
        # With 4 disks the per-disk I/O demand is 0.25 < 0.3, so a query
        # with page CPU 0.3 counts as CPU-bound despite being light.
        system = StubSystem(io_counts=(0,), cpu_counts=(0,), num_sites=1)
        import dataclasses

        config = system.config.with_site(num_disks=4)
        system.config = config
        policy = BNQRDPolicy()
        policy.bind(system)
        query = make_query(config, 0, 0, 10.0, 0.0)
        query.spec = dataclasses.replace(query.spec, page_cpu_time=0.3)
        assert not policy.is_io_bound(query)

    def test_routes_to_matching_class_minimum(self):
        system = StubSystem(io_counts=(3, 0, 2), cpu_counts=(0, 5, 0))
        policy = BNQRDPolicy()
        policy.bind(system)
        # An I/O query ignores site 1's huge CPU population.
        assert policy.select(_io_query(system), SystemView(system, 0)) == 1


class TestLERT:
    def test_cost_formula_local(self):
        system = StubSystem(io_counts=(2, 0), cpu_counts=(1, 0))
        policy = LERTPolicy()
        policy.bind(system)
        query = _io_query(system, reads=10.0)
        policy._view = SystemView(system, 0)
        # cpu_time = 10*0.05 = 0.5 ; io_time = 10*1 = 10
        # cpu_wait = 0.5*1 = 0.5 ; io_wait = 10*(2/2) = 10 ; net = 0
        assert policy.site_cost(query, 0) == pytest.approx(0.5 + 0.5 + 10 + 10)

    def test_cost_formula_remote_adds_network(self):
        system = StubSystem(io_counts=(0, 0), cpu_counts=(0, 0), msg_length=1.5)
        policy = LERTPolicy()
        policy.bind(system)
        query = _cpu_query(system, reads=10.0)
        policy._view = SystemView(system, 0)
        # cpu_time = 10*1 = 10 ; io_time = 10 ; waits 0 ; net = 1.5+1.5.
        assert policy.site_cost(query, 1) == pytest.approx(10 + 10 + 3.0)
        assert policy.site_cost(query, 0) == pytest.approx(20.0)

    def test_io_wait_divides_by_disks(self):
        system = StubSystem(io_counts=(4, 0), cpu_counts=(0, 0))
        policy = LERTPolicy()
        policy.bind(system)
        query = _io_query(system, reads=10.0)
        policy._view = SystemView(system, 0)
        # io_wait = 10 * (4/2) = 20.
        cost = policy.site_cost(query, 0)
        assert cost == pytest.approx(0.5 + 0.0 + 10 + 20)

    def test_prefers_local_when_gain_below_transfer_cost(self):
        # Site 1 is idle but the job is tiny: transferring costs more than
        # the queueing it avoids.
        system = StubSystem(io_counts=(1, 0), cpu_counts=(0, 0), msg_length=10.0)
        policy = LERTPolicy()
        policy.bind(system)
        query = _io_query(system, reads=1.0)
        assert policy.select(query, SystemView(system, 0)) == 0

    def test_transfers_when_gain_exceeds_cost(self):
        system = StubSystem(io_counts=(8, 0), cpu_counts=(0, 0), msg_length=1.0)
        policy = LERTPolicy()
        policy.bind(system)
        query = _io_query(system, reads=10.0)
        assert policy.select(query, SystemView(system, 0)) == 1


class TestLocalAndRandom:
    def test_local_returns_arrival(self):
        system = StubSystem(io_counts=(9, 0), cpu_counts=(9, 0))
        policy = LocalPolicy()
        policy.bind(system)
        assert policy.select(_io_query(system), SystemView(system, 0)) == 0

    def test_random_covers_all_sites(self):
        class RandomStub(StubSystem):
            def __init__(self):
                super().__init__((0, 0, 0), (0, 0, 0))
                from repro.sim.engine import Simulator

                self.sim = Simulator(seed=12)

        system = RandomStub()
        policy = RandomPolicy()
        policy.bind(system)
        picks = {
            policy.select(_io_query(system), SystemView(system, 0))
            for _ in range(100)
        }
        assert picks == {0, 1, 2}
