"""Unit tests for the LERT-MVA extension policy."""

import pytest

from repro.model.config import paper_defaults
from repro.model.loadboard import FrozenLoadView
from repro.model.query import make_query
from repro.model.view import SystemView
from repro.policies.lert_mva import LERTMVAPolicy


class StubSystem:
    def __init__(self, io_counts, cpu_counts, msg_length=1.0):
        self.config = paper_defaults(
            num_sites=len(io_counts), msg_length=msg_length
        )
        self.load_view = FrozenLoadView(io_counts, cpu_counts)

    def candidate_sites(self, query):
        return range(self.config.num_sites)

    def estimated_transfer_time(self, query):
        return self.config.network.msg_length

    def estimated_return_time(self, query):
        return self.config.network.msg_length


def _query(system, class_index=0):
    return make_query(system.config, class_index, 0, estimated_reads=20.0, created_at=0.0)


class TestEstimates:
    def test_empty_site_estimate_is_service_demand(self):
        system = StubSystem((0, 0), (0, 0))
        policy = LERTMVAPolicy()
        policy.bind(system)
        # io class: 20 reads * (1.0 disk + 0.05 cpu) = 21.
        estimate = policy._estimated_response(0, 0, class_index=0)
        assert estimate == pytest.approx(21.0, rel=0.01)

    def test_estimate_increases_with_load(self):
        system = StubSystem((0, 0), (0, 0))
        policy = LERTMVAPolicy()
        policy.bind(system)
        estimates = [
            policy._estimated_response(n, n, class_index=0) for n in range(4)
        ]
        assert all(b > a for a, b in zip(estimates, estimates[1:]))

    def test_cache_hit_returns_same_object_value(self):
        system = StubSystem((0, 0), (0, 0))
        policy = LERTMVAPolicy()
        policy.bind(system)
        first = policy._estimated_response(2, 1, 0)
        assert (2, 1, 0) in policy._cache
        assert policy._estimated_response(2, 1, 0) == first

    def test_io_query_penalized_by_io_load(self):
        system = StubSystem((0, 0), (0, 0))
        policy = LERTMVAPolicy()
        policy.bind(system)
        with_io_load = policy._estimated_response(4, 0, class_index=0)
        with_cpu_load = policy._estimated_response(0, 4, class_index=0)
        # An I/O-bound arrival suffers more from I/O-bound competitors.
        assert with_io_load > with_cpu_load


class TestSelection:
    def test_selects_idle_site(self):
        system = StubSystem((6, 0, 6), (4, 0, 4))
        policy = LERTMVAPolicy()
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 1

    def test_network_cost_discourages_marginal_transfers(self):
        system = StubSystem((1, 0), (0, 0), msg_length=50.0)
        policy = LERTMVAPolicy()
        policy.bind(system)
        # One competitor at home, but moving costs 100 time units.
        assert policy.select(_query(system), SystemView(system, 0)) == 0
