"""The redesigned policy API: ``select(query, view)`` everywhere.

Includes the AST pin required by the PR: no internal caller may use the
deprecated ``select_site(query, arrival_site)`` spelling — the only
mentions allowed in ``src/repro`` are the bridge/shim machinery in
``policies/base.py`` itself.
"""

import ast
import pathlib
import warnings

import pytest

from repro.model.query import make_query
from repro.model.system import DistributedDatabase
from repro.model.view import SystemView
from repro.policies.base import AllocationPolicy, LegacyPolicyAdapter
from repro.policies.registry import available_policies, make_policy

SRC_REPRO = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _query(config, home_site=0):
    return make_query(
        config, 0, home_site=home_site, estimated_reads=5.0, created_at=0.0, qid=1
    )


class TestNoInternalLegacyCallers:
    """AST scan: the old signature is dead inside ``src/repro``."""

    def test_no_select_site_calls_outside_base(self):
        offenders = []
        for path in sorted(SRC_REPRO.rglob("*.py")):
            if path.name == "base.py" and path.parent.name == "policies":
                continue  # the bridge/shim itself
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "select_site"
                ):
                    offenders.append(f"{path}:{node.lineno}")
        assert offenders == [], (
            "internal callers still use the deprecated "
            "select_site(query, arrival_site):\n" + "\n".join(offenders)
        )

    def test_no_select_site_overrides_outside_base(self):
        """Built-in policies define select(), never select_site()."""
        offenders = []
        for path in sorted((SRC_REPRO / "policies").rglob("*.py")):
            if path.name == "base.py":
                continue
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == "select_site"
                ):
                    offenders.append(f"{path}:{node.lineno}")
        assert offenders == []

    def test_every_registered_policy_overrides_select(self):
        for name in available_policies():
            policy = make_policy(name)
            assert type(policy).select is not AllocationPolicy.select, name
            # and none of them rides the legacy bridge: any select_site
            # they expose is one of base.py's deprecated shims, never an
            # override of their own.
            from repro.policies.base import CostBasedPolicy

            assert type(policy).select_site in (
                AllocationPolicy.select_site,
                CostBasedPolicy.select_site,
            ), name


class TestDeprecatedShim:
    def test_select_site_warns_and_agrees_with_select(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("BNQ"), seed=5)
        policy = system.policy
        query = _query(tiny_config)
        fresh = policy.select(query, system.view_for(0))
        with pytest.warns(DeprecationWarning, match="select_site"):
            legacy = policy.select_site(query, arrival_site=0)
        assert legacy == fresh

    def test_base_select_without_override_raises(self, tiny_config):
        policy = AllocationPolicy()
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=5)
        with pytest.raises(NotImplementedError):
            policy.select(_query(tiny_config), system.view_for(0))

    def test_legacy_subclass_bridges_with_warning(self, tiny_config):
        class OldSchool(AllocationPolicy):
            name = "old-school"

            def select_site(self, query, arrival_site):  # pre-1.1 shape
                return arrival_site

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            system = DistributedDatabase(tiny_config, OldSchool(), seed=5)
        view = system.view_for(2)
        with pytest.warns(DeprecationWarning, match="overrides the deprecated"):
            chosen = system.policy.select(_query(tiny_config, home_site=2), view)
        assert chosen == 2


class TestLegacyPolicyAdapter:
    def test_wraps_duck_typed_legacy_object(self, tiny_config):
        class Ancient:
            name = "ancient"

            def __init__(self):
                self.bound = None

            def bind(self, system):
                self.bound = system

            def select_site(self, query, arrival_site):
                return (arrival_site + 1) % 3

        legacy = Ancient()
        with pytest.warns(DeprecationWarning, match="wrapping legacy"):
            adapter = LegacyPolicyAdapter(legacy)
        assert adapter.name == "ancient"
        system = DistributedDatabase(tiny_config, adapter, seed=5)
        assert legacy.bound is system
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # per-decision path: warning-free
            chosen = adapter.select(_query(tiny_config), system.view_for(1))
        assert chosen == 2

    def test_rejects_objects_without_select_site(self):
        with pytest.raises(TypeError, match="select_site"):
            LegacyPolicyAdapter(object())

    def test_adapter_runs_end_to_end(self, tiny_config):
        class Ancient:
            name = "ancient-local"

            def select_site(self, query, arrival_site):
                return arrival_site

        with pytest.warns(DeprecationWarning):
            adapter = LegacyPolicyAdapter(Ancient())
        system = DistributedDatabase(tiny_config, adapter, seed=5)
        results = system.run(warmup=20.0, duration=150.0)
        assert results.completions > 0
        assert results.remote_fraction == 0.0  # it really behaves like LOCAL


class TestViewDrivenSelection:
    def test_policies_skip_down_sites(self, tiny_config):
        """Every load-sharing policy only ever returns available sites."""
        from repro.faults.plan import FaultPlan, SiteOutage

        plan = FaultPlan(site_outages=(SiteOutage(1, 5.0, 1e6),), max_retries=5)
        for name in ("RANDOM", "BNQ", "BNQRD", "LERT", "SQ2", "THRESHOLD"):
            system = DistributedDatabase(
                tiny_config, make_policy(name), seed=6, faults=plan
            )
            system.sim.run(until=10.0)  # past the crash
            view = system.view_for(0)
            query = _query(tiny_config)
            for trial in range(20):
                chosen = system.policy.select(query, view)
                assert chosen != 1, name
