"""Unit tests for the THRESHOLD and power-of-d policies."""

import pytest

from repro.model.config import paper_defaults
from repro.model.loadboard import FrozenLoadView
from repro.model.query import make_query
from repro.model.view import SystemView
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.policies.threshold import PowerOfDPolicy, ThresholdPolicy
from repro.sim.engine import Simulator


class StubSystem:
    def __init__(self, io_counts, cpu_counts):
        self.config = paper_defaults(num_sites=len(io_counts))
        self.load_view = FrozenLoadView(io_counts, cpu_counts)
        self.sim = Simulator(seed=77)

    def candidate_sites(self, query):
        return range(self.config.num_sites)


def _query(system):
    return make_query(system.config, 0, 0, estimated_reads=5.0, created_at=0.0)


class TestThresholdPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(threshold=-1)
        with pytest.raises(ValueError):
            ThresholdPolicy(probe_limit=0)

    def test_stays_home_below_threshold(self):
        system = StubSystem((3, 0, 0, 0), (0, 0, 0, 0))
        policy = ThresholdPolicy(threshold=4)
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 0
        assert policy.probes_sent == 0

    def test_transfers_when_overloaded(self):
        system = StubSystem((9, 0, 0, 0), (0, 0, 0, 0))
        policy = ThresholdPolicy(threshold=4)
        policy.bind(system)
        chosen = policy.select(_query(system), SystemView(system, 0))
        assert chosen != 0
        assert policy.probes_sent >= 1

    def test_probe_limit_respected(self):
        # Every remote site is also overloaded: the policy gives up after
        # probe_limit probes and keeps the query home.
        system = StubSystem((9, 9, 9, 9, 9, 9), (0, 0, 0, 0, 0, 0))
        policy = ThresholdPolicy(threshold=4, probe_limit=2)
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 0
        assert policy.probes_sent == 2

    def test_probe_start_rotates(self):
        system = StubSystem((9, 0, 0, 0), (0, 0, 0, 0))
        policy = ThresholdPolicy(threshold=4, probe_limit=1)
        policy.bind(system)
        picks = {policy.select(_query(system), SystemView(system, 0)) for _ in range(6)}
        assert len(picks) > 1  # different first-probe targets over time

    def test_single_site_system(self):
        system = StubSystem((9,), (0,))
        policy = ThresholdPolicy(threshold=1)
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 0


class TestPowerOfDPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerOfDPolicy(d=0)

    def test_picks_least_loaded_of_sample(self):
        # d = num_sites makes the sample deterministic: all sites.
        system = StubSystem((5, 2, 7, 0), (0, 0, 0, 0))
        policy = PowerOfDPolicy(d=4)
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 3

    def test_home_wins_ties(self):
        system = StubSystem((1, 1, 1, 1), (0, 0, 0, 0))
        policy = PowerOfDPolicy(d=4)
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 2)) == 2

    def test_d_larger_than_sites_is_clamped(self):
        system = StubSystem((1, 0), (0, 0))
        policy = PowerOfDPolicy(d=10)
        policy.bind(system)
        assert policy.select(_query(system), SystemView(system, 0)) == 1


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["THRESHOLD", "SQ2"])
    def test_registered_and_runs(self, tiny_config, name):
        system = DistributedDatabase(tiny_config, make_policy(name), seed=1)
        results = system.run(warmup=100.0, duration=600.0)
        assert results.completions > 20

    def test_threshold_profile_between_local_and_bnq(self, tiny_config):
        runs = {}
        # The tiny config carries ~1-2 queries per site, so the default
        # threshold of 4 would never trigger; use 1.
        policies = {
            "LOCAL": make_policy("LOCAL"),
            "THRESHOLD": ThresholdPolicy(threshold=1),
            "BNQ": make_policy("BNQ"),
        }
        for name, policy in policies.items():
            system = DistributedDatabase(tiny_config, policy, seed=2)
            runs[name] = system.run(300.0, 2500.0)
        # THRESHOLD transfers sparingly: its remote fraction sits strictly
        # between LOCAL's zero and BNQ's (the defining partial-information
        # signature), and it does not do worse than LOCAL.
        assert (
            runs["LOCAL"].remote_fraction
            < runs["THRESHOLD"].remote_fraction
            < runs["BNQ"].remote_fraction
        )
        assert (
            runs["THRESHOLD"].mean_waiting_time
            < runs["LOCAL"].mean_waiting_time * 1.02
        )
