"""Unit tests for the Bard–Schweitzer approximate solver."""

import pytest

from repro.queueing.amva import solve_amva
from repro.queueing.mva import solve_mva
from repro.queueing.network import closed_network
from repro.queueing.stations import delay, fcfs, multiserver, ps


class TestAgainstExact:
    def test_single_class_close_to_exact(self):
        net = closed_network(
            [fcfs("disk", [1.0]), ps("cpu", [0.5])], ["jobs"], [5.0]
        )
        exact = solve_mva(net, (10,))
        approx = solve_amva(net, (10,))
        # Bard-Schweitzer is known to err by ~5-8% at moderate load.
        assert approx.throughputs[0] == pytest.approx(
            exact.throughputs[0], rel=0.08
        )

    def test_multiclass_close_to_exact(self):
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.05, 1.0])],
            ["io", "cpu"],
            [3.0, 3.0],
        )
        exact = solve_mva(net, (6, 6))
        approx = solve_amva(net, (6, 6))
        for k in range(2):
            assert approx.throughputs[k] == pytest.approx(
                exact.throughputs[k], rel=0.10
            )
            assert approx.cycle_time(k) == pytest.approx(
                exact.cycle_time(k), rel=0.15
            )

    def test_multiserver_close_to_exact(self):
        net = closed_network(
            [multiserver("disk", [1.0, 1.0], 2), ps("cpu", [0.05, 1.0])],
            ["io", "cpu"],
        )
        exact = solve_mva(net, (4, 3))
        approx = solve_amva(net, (4, 3))
        for k in range(2):
            assert approx.cycle_time(k) == pytest.approx(
                exact.cycle_time(k), rel=0.30
            )

    def test_exact_at_population_one(self):
        # With one customer Bard–Schweitzer's shrink factor is 0, so the
        # result is exact.
        net = closed_network([fcfs("d", [1.0]), ps("c", [0.5])], ["jobs"])
        exact = solve_mva(net, (1,))
        approx = solve_amva(net, (1,))
        assert approx.throughputs[0] == pytest.approx(exact.throughputs[0], rel=1e-6)


class TestBehaviour:
    def test_scales_to_large_populations(self):
        # Exact MVA would need a 101x101 lattice; AMVA is a fixed point.
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.05, 1.0])],
            ["io", "cpu"],
            [50.0, 50.0],
        )
        solution = solve_amva(net, (100, 100))
        assert solution.throughputs[0] > 0
        assert solution.utilization(0) <= 1.0 + 1e-9

    def test_zero_population_class(self):
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.5, 0.5])], ["a", "b"]
        )
        solution = solve_amva(net, (5, 0))
        assert solution.throughputs[1] == 0.0

    def test_delay_station_residence_is_demand(self):
        net = closed_network(
            [delay("think", [7.0]), fcfs("d", [1.0])], ["jobs"]
        )
        solution = solve_amva(net, (4,))
        assert solution.residence_times[0][0] == pytest.approx(7.0)

    def test_population_length_mismatch(self):
        net = closed_network([fcfs("d", [1.0])], ["a"])
        with pytest.raises(ValueError):
            solve_amva(net, (1, 2))

    def test_multiserver_residence_includes_seidmann_delay(self):
        # At light load the c-server residence must approach the full
        # demand D (not D/c): the Seidmann delay portion is folded back.
        net = closed_network(
            [multiserver("disk", [1.0], 3)], ["jobs"], [100.0]
        )
        solution = solve_amva(net, (1,))
        assert solution.residence_times[0][0] == pytest.approx(1.0, rel=1e-6)
