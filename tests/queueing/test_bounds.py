"""Unit tests for the throughput bounds."""

import pytest

from repro.queueing.bounds import (
    asymptotic_bounds,
    balanced_job_bounds,
    saturation_population,
)
from repro.queueing.mva import solve_mva
from repro.queueing.network import closed_network
from repro.queueing.stations import delay, fcfs, multiserver, ps


@pytest.fixture
def reference_network():
    return closed_network(
        [fcfs("disk", [1.0]), ps("cpu", [0.5])], ["jobs"], [5.0]
    )


class TestAsymptoticBounds:
    @pytest.mark.parametrize("population", [1, 3, 7, 15, 40])
    def test_exact_mva_within_bounds(self, reference_network, population):
        bounds = asymptotic_bounds(reference_network, population)
        exact = solve_mva(reference_network, (population,)).throughputs[0]
        assert bounds.contains(exact)

    def test_population_one_upper_is_exact(self, reference_network):
        bounds = asymptotic_bounds(reference_network, 1)
        exact = solve_mva(reference_network, (1,)).throughputs[0]
        assert bounds.upper == pytest.approx(exact)
        assert bounds.lower == pytest.approx(exact)

    def test_upper_saturates_at_bottleneck(self, reference_network):
        bounds = asymptotic_bounds(reference_network, 500)
        assert bounds.upper == pytest.approx(1.0)  # 1 / D_max = 1/1.0

    def test_zero_population(self, reference_network):
        bounds = asymptotic_bounds(reference_network, 0)
        assert bounds.lower == bounds.upper == 0.0

    def test_negative_population_rejected(self, reference_network):
        with pytest.raises(ValueError):
            asymptotic_bounds(reference_network, -1)

    def test_multiclass_rejected(self):
        net = closed_network([ps("cpu", [1.0, 1.0])], ["a", "b"])
        with pytest.raises(ValueError):
            asymptotic_bounds(net, 3)

    def test_pure_delay_network_rejected(self):
        net = closed_network([delay("think", [1.0])], ["a"])
        with pytest.raises(ValueError):
            asymptotic_bounds(net, 3)

    def test_multiserver_effective_demand(self):
        # A 2-server station with D=1 saturates at rate 2.
        net = closed_network([multiserver("disk", [1.0], 2)], ["jobs"], [1.0])
        bounds = asymptotic_bounds(net, 100)
        assert bounds.upper == pytest.approx(2.0)


class TestBalancedJobBounds:
    @pytest.mark.parametrize("population", [1, 3, 7, 15, 40])
    def test_exact_mva_within_bounds(self, reference_network, population):
        bounds = balanced_job_bounds(reference_network, population)
        exact = solve_mva(reference_network, (population,)).throughputs[0]
        assert bounds.contains(exact), (population, bounds, exact)

    @pytest.mark.parametrize("population", [2, 5, 10, 30])
    def test_at_least_as_tight_as_asymptotic(self, reference_network, population):
        asymptotic = asymptotic_bounds(reference_network, population)
        balanced = balanced_job_bounds(reference_network, population)
        assert balanced.upper <= asymptotic.upper + 1e-12
        assert balanced.lower >= asymptotic.lower - 1e-12


class TestSaturation:
    def test_saturation_population(self, reference_network):
        # (D + Z) / D_max = (1.5 + 5) / 1 = 6.5.
        assert saturation_population(reference_network) == pytest.approx(6.5)

    def test_throughput_flattens_past_saturation(self, reference_network):
        n_star = saturation_population(reference_network)
        below = solve_mva(reference_network, (max(1, int(n_star // 2)),)).throughputs[0]
        above = solve_mva(reference_network, (int(n_star * 3),)).throughputs[0]
        far_above = solve_mva(reference_network, (int(n_star * 6),)).throughputs[0]
        # Below saturation throughput is well under the cap; far above, the
        # marginal gain is tiny.
        assert below < 0.95 * (1.0 / 1.0)
        assert (far_above - above) < 0.02
