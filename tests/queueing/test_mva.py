"""Unit tests for the exact MVA solver."""

import pytest

from repro.queueing.mva import solve_mva
from repro.queueing.network import ClosedNetwork, closed_network
from repro.queueing.stations import delay, fcfs, multiserver, ps
from repro.queueing.validate import (
    littles_law_residual,
    machine_repairman_throughput,
    population_residual,
    utilization_bounds_violation,
)


class TestClosedForms:
    @pytest.mark.parametrize("machines", [1, 2, 5, 10, 25])
    def test_machine_repairman(self, machines):
        think, service = 10.0, 1.0
        net = closed_network([fcfs("repair", [service])], ["m"], think_times=[think])
        solution = solve_mva(net, (machines,))
        reference = machine_repairman_throughput(machines, think, service)
        assert solution.throughputs[0] == pytest.approx(reference, rel=1e-12)

    def test_single_customer_never_waits(self):
        net = closed_network(
            [fcfs("disk", [1.0]), ps("cpu", [0.5])], ["jobs"]
        )
        solution = solve_mva(net, (1,))
        assert solution.waiting_time(0) == pytest.approx(0.0, abs=1e-12)
        assert solution.cycle_time(0) == pytest.approx(1.5)
        assert solution.throughputs[0] == pytest.approx(1 / 1.5)

    def test_two_station_single_customer_residences_are_demands(self):
        net = closed_network([ps("a", [2.0]), ps("b", [3.0])], ["jobs"])
        solution = solve_mva(net, (1,))
        assert solution.residence_times[0] == (
            pytest.approx(2.0),
            pytest.approx(3.0),
        )

    def test_asymptotic_bottleneck_throughput(self):
        # With many customers, throughput approaches 1 / max demand.
        net = closed_network([fcfs("slow", [2.0]), fcfs("fast", [1.0])], ["jobs"])
        solution = solve_mva(net, (50,))
        assert solution.throughputs[0] == pytest.approx(0.5, rel=1e-3)
        assert solution.utilization(0) == pytest.approx(1.0, rel=1e-3)


class TestMultiServer:
    def test_two_servers_single_customer_is_plain_service(self):
        net = closed_network([multiserver("disk", [1.0], 2)], ["jobs"], [5.0])
        solution = solve_mva(net, (1,))
        assert solution.cycle_time(0) == pytest.approx(1.0)

    def test_two_customers_two_servers_never_queue_without_think(self):
        net = closed_network([multiserver("disk", [1.0], 2)], ["jobs"])
        solution = solve_mva(net, (2,))
        # Both customers always at the 2-server station: no queueing.
        assert solution.cycle_time(0) == pytest.approx(1.0)
        assert solution.throughputs[0] == pytest.approx(2.0)

    def test_multiserver_beats_single_fast_load(self):
        single = closed_network([fcfs("d", [1.0])], ["jobs"], [2.0])
        double = closed_network([multiserver("d", [1.0], 2)], ["jobs"], [2.0])
        x1 = solve_mva(single, (6,)).throughputs[0]
        x2 = solve_mva(double, (6,)).throughputs[0]
        assert x2 > x1

    def test_multiserver_matches_erlang_machine_repairman_limit(self):
        # c servers, population <= c: nobody ever queues.
        net = closed_network([multiserver("d", [1.0], 4)], ["jobs"], [1.0])
        solution = solve_mva(net, (4,))
        assert solution.waiting_time(0) == pytest.approx(0.0, abs=1e-10)


class TestMultiClass:
    def test_symmetric_classes_get_identical_measures(self):
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.4, 0.4])], ["a", "b"]
        )
        solution = solve_mva(net, (3, 3))
        assert solution.throughputs[0] == pytest.approx(solution.throughputs[1])
        assert solution.waiting_time(0) == pytest.approx(solution.waiting_time(1))

    def test_heavier_class_waits_longer_at_its_resource(self):
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.05, 1.0])], ["io", "cpu"]
        )
        solution = solve_mva(net, (2, 2))
        # The CPU-bound class's CPU residence exceeds the I/O class's.
        assert solution.residence_times[1][1] > solution.residence_times[0][1]

    def test_empty_class_contributes_nothing(self):
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.5, 0.5])], ["a", "b"]
        )
        with_empty = solve_mva(net, (3, 0))
        single = closed_network([fcfs("disk", [1.0]), ps("cpu", [0.5])], ["a"])
        alone = solve_mva(single, (3,))
        assert with_empty.throughputs[0] == pytest.approx(alone.throughputs[0])
        assert with_empty.throughputs[1] == 0.0

    def test_zero_population_solution(self):
        net = closed_network([fcfs("d", [1.0])], ["a"])
        solution = solve_mva(net, (0,))
        assert solution.throughputs == (0.0,)
        assert solution.queue_lengths == (0.0,)

    def test_waiting_increases_with_population(self):
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.05, 1.0])], ["io", "cpu"]
        )
        waits = [
            solve_mva(net, (n, n)).waiting_time(0) for n in range(1, 5)
        ]
        assert all(b > a for a, b in zip(waits, waits[1:]))

    def test_think_time_reduces_contention(self):
        busy = closed_network([fcfs("d", [1.0])], ["a"], [0.0])
        relaxed = closed_network([fcfs("d", [1.0])], ["a"], [10.0])
        assert (
            solve_mva(relaxed, (4,)).waiting_time(0)
            < solve_mva(busy, (4,)).waiting_time(0)
        )


class TestInvariants:
    @pytest.mark.parametrize(
        "population", [(1, 1), (3, 2), (0, 4), (5, 5)]
    )
    def test_conservation_laws(self, population):
        net = closed_network(
            [
                multiserver("disk", [1.0, 1.0], 2),
                ps("cpu", [0.05, 1.0]),
            ],
            ["io", "cpu"],
            [2.0, 2.0],
        )
        solution = solve_mva(net, population)
        assert population_residual(solution) < 1e-9
        assert littles_law_residual(solution) < 1e-9
        assert utilization_bounds_violation(solution) < 1e-9

    def test_normalized_waiting_definition(self):
        net = closed_network(
            [fcfs("disk", [1.0, 1.0]), ps("cpu", [0.05, 1.0])], ["io", "cpu"]
        )
        solution = solve_mva(net, (2, 2))
        for k, demand in ((0, 1.05), (1, 2.0)):
            assert solution.normalized_waiting_time(k) == pytest.approx(
                solution.waiting_time(k) / demand
            )


class TestErrors:
    def test_population_length_mismatch(self):
        net = closed_network([fcfs("d", [1.0, 1.0])], ["a", "b"])
        with pytest.raises(ValueError):
            solve_mva(net, (1,))

    def test_class_with_no_demand_anywhere(self):
        net = closed_network([ps("cpu", [1.0, 0.0])], ["a", "b"])
        with pytest.raises(ValueError, match="zero total demand"):
            solve_mva(net, (1, 1))

    def test_network_validation(self):
        with pytest.raises(ValueError):
            ClosedNetwork((), ("a",))
        with pytest.raises(ValueError):
            closed_network([ps("cpu", [1.0])], ["a", "b"])
        with pytest.raises(ValueError):
            closed_network([ps("cpu", [1.0])], ["a"], think_times=[-1.0])

    def test_station_lookup(self):
        net = closed_network([ps("cpu", [1.0]), fcfs("d", [1.0])], ["a"])
        assert net.station_index("d") == 1
        assert net.station_named("cpu").kind.value == "ps"
        with pytest.raises(KeyError):
            net.station_index("nope")
