"""Unit tests for population-vector utilities."""

import pytest

from repro.queueing.population import (
    decrement,
    lattice,
    lattice_size,
    total,
    validate_population,
    zero_like,
)


class TestValidation:
    def test_accepts_valid(self):
        assert validate_population((2, 3)) == (2, 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_population((1, -1))

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            validate_population((1.5, 2))


class TestHelpers:
    def test_zero_like(self):
        assert zero_like((3, 4, 5)) == (0, 0, 0)

    def test_total(self):
        assert total((2, 3, 4)) == 9

    def test_decrement(self):
        assert decrement((2, 3), 1) == (2, 2)

    def test_decrement_empty_class_raises(self):
        with pytest.raises(ValueError):
            decrement((2, 0), 1)


class TestLattice:
    def test_size(self):
        assert lattice_size((2, 3)) == 12
        assert lattice_size((0, 0)) == 1

    def test_enumerates_everything_once(self):
        vectors = list(lattice((2, 2)))
        assert len(vectors) == 9
        assert len(set(vectors)) == 9
        assert all(0 <= a <= 2 and 0 <= b <= 2 for a, b in vectors)

    def test_increasing_total_order(self):
        vectors = list(lattice((3, 2)))
        totals = [sum(v) for v in vectors]
        assert totals == sorted(totals)

    def test_recursion_prerequisite(self):
        # Every v - e_k appears before v, which the MVA recursion relies on.
        vectors = list(lattice((2, 2, 1)))
        position = {v: i for i, v in enumerate(vectors)}
        for v in vectors:
            for k in range(3):
                if v[k] > 0:
                    assert position[decrement(v, k)] < position[v]

    def test_single_class(self):
        assert list(lattice((3,))) == [(0,), (1,), (2,), (3,)]
