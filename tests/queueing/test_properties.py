"""Property-based tests for the MVA solvers over random small networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.amva import solve_amva
from repro.queueing.mva import solve_mva
from repro.queueing.network import closed_network
from repro.queueing.stations import Station, StationKind
from repro.queueing.validate import (
    littles_law_residual,
    population_residual,
    utilization_bounds_violation,
)

demand = st.floats(min_value=0.05, max_value=5.0, allow_nan=False)


@st.composite
def small_networks(draw):
    """A random 2-class network: one shared FCFS + one PS + think times."""
    shared = draw(demand)
    cpu_demands = (draw(demand), draw(demand))
    think = (
        draw(st.floats(min_value=0.0, max_value=10.0)),
        draw(st.floats(min_value=0.0, max_value=10.0)),
    )
    servers = draw(st.integers(min_value=1, max_value=3))
    disk_kind = StationKind.MULTISERVER if servers > 1 else StationKind.FCFS
    stations = (
        Station("disk", disk_kind, (shared, shared), servers=servers),
        Station("cpu", StationKind.PS, cpu_demands),
    )
    population = (
        draw(st.integers(min_value=0, max_value=4)),
        draw(st.integers(min_value=0, max_value=4)),
    )
    return closed_network(stations, ("a", "b"), think), population


@settings(deadline=None, max_examples=60)
@given(small_networks())
def test_exact_mva_satisfies_conservation_laws(net_pop):
    network, population = net_pop
    solution = solve_mva(network, population)
    assert population_residual(solution) < 1e-8
    assert littles_law_residual(solution) < 1e-8
    assert utilization_bounds_violation(solution) < 1e-8


@settings(deadline=None, max_examples=60)
@given(small_networks())
def test_waiting_times_nonnegative(net_pop):
    network, population = net_pop
    solution = solve_mva(network, population)
    for k in range(2):
        assert solution.waiting_time(k) >= -1e-9


@settings(deadline=None, max_examples=40)
@given(small_networks())
def test_throughput_monotone_in_own_population(net_pop):
    network, population = net_pop
    grown = (population[0] + 1, population[1])
    x_small = solve_mva(network, population).throughputs[0]
    x_large = solve_mva(network, grown).throughputs[0]
    assert x_large >= x_small - 1e-9


@settings(deadline=None, max_examples=40)
@given(small_networks())
def test_amva_tracks_exact_loosely(net_pop):
    network, population = net_pop
    if sum(population) == 0:
        return
    exact = solve_mva(network, population)
    approx = solve_amva(network, population)
    for k in range(2):
        if population[k] == 0:
            assert approx.throughputs[k] == 0.0
            continue
        assert approx.throughputs[k] == pytest.approx(
            exact.throughputs[k], rel=0.35, abs=1e-9
        )


@settings(deadline=None, max_examples=40)
@given(small_networks())
def test_amva_conservation(net_pop):
    network, population = net_pop
    solution = solve_amva(network, population)
    # AMVA is approximate but must still satisfy Little's law internally
    # and keep utilizations legal.
    assert littles_law_residual(solution) < 1e-6
    assert utilization_bounds_violation(solution) < 1e-6
