"""Tests for the generic closed-network simulation adapter."""

import pytest

from repro.queueing.mva import solve_mva
from repro.queueing.network import closed_network
from repro.queueing.simulate import simulate_network
from repro.queueing.stations import delay, fcfs, multiserver, ps


class TestAgreementWithExactMVA:
    def test_single_class_two_stations(self):
        net = closed_network(
            [fcfs("disk", [1.0]), ps("cpu", [0.5])], ["jobs"], [3.0]
        )
        exact = solve_mva(net, (5,))
        measured = simulate_network(net, (5,), horizon=30000.0, seed=1)
        assert measured.throughputs[0] == pytest.approx(
            exact.throughputs[0], rel=0.05
        )
        assert measured.cycle_times[0] == pytest.approx(
            exact.cycle_time(0), rel=0.08
        )

    def test_multiclass_with_multiserver(self):
        net = closed_network(
            [multiserver("disk", [1.0, 1.0], 2), ps("cpu", [0.05, 1.0])],
            ["io", "cpu"],
        )
        exact = solve_mva(net, (3, 2))
        measured = simulate_network(net, (3, 2), horizon=40000.0, seed=2)
        for k in range(2):
            assert measured.throughputs[k] == pytest.approx(
                exact.throughputs[k], rel=0.06
            )
            assert measured.waiting_times[k] == pytest.approx(
                exact.waiting_time(k), rel=0.15, abs=0.03
            )

    def test_delay_station(self):
        net = closed_network(
            [delay("think", [5.0]), fcfs("disk", [1.0])], ["jobs"]
        )
        exact = solve_mva(net, (4,))
        measured = simulate_network(net, (4,), horizon=30000.0, seed=3)
        assert measured.throughputs[0] == pytest.approx(
            exact.throughputs[0], rel=0.05
        )

    def test_utilization_law(self):
        net = closed_network([fcfs("disk", [1.0]), ps("cpu", [0.5])], ["jobs"], [3.0])
        measured = simulate_network(net, (5,), horizon=30000.0, seed=4)
        # U = X * D at every station.
        assert measured.utilizations[0] == pytest.approx(
            measured.throughputs[0] * 1.0, rel=0.03
        )
        assert measured.utilizations[1] == pytest.approx(
            measured.throughputs[0] * 0.5, rel=0.03
        )


class TestServiceVariability:
    def test_deterministic_service_waits_less_than_exponential(self):
        # M/D/1-flavored: lower service variability, lower queueing.
        net = closed_network([fcfs("disk", [1.0])], ["jobs"], [2.0])
        exponential = simulate_network(
            net, (6,), horizon=30000.0, seed=5, service_cv=1.0
        )
        deterministic = simulate_network(
            net, (6,), horizon=30000.0, seed=5, service_cv=0.0
        )
        assert deterministic.waiting_times[0] < exponential.waiting_times[0]

    def test_hyperexponential_service_waits_more(self):
        net = closed_network([fcfs("disk", [1.0])], ["jobs"], [2.0])
        exponential = simulate_network(
            net, (6,), horizon=30000.0, seed=6, service_cv=1.0
        )
        bursty = simulate_network(
            net, (6,), horizon=30000.0, seed=6, service_cv=3.0
        )
        assert bursty.waiting_times[0] > exponential.waiting_times[0]

    def test_service_cv_mean_preserved(self):
        # Throughput (a mean-driven quantity) should barely move with cv at
        # low load.
        net = closed_network([fcfs("disk", [1.0])], ["jobs"], [20.0])
        runs = [
            simulate_network(net, (2,), horizon=40000.0, seed=7, service_cv=cv)
            for cv in (0.0, 1.0, 2.0)
        ]
        xs = [r.throughputs[0] for r in runs]
        assert max(xs) / min(xs) < 1.1


class TestValidation:
    def test_population_mismatch(self):
        net = closed_network([fcfs("d", [1.0])], ["a"])
        with pytest.raises(ValueError):
            simulate_network(net, (1, 2))

    def test_bad_warmup(self):
        net = closed_network([fcfs("d", [1.0])], ["a"])
        with pytest.raises(ValueError):
            simulate_network(net, (1,), horizon=100.0, warmup=100.0)

    def test_reproducible(self):
        net = closed_network([fcfs("d", [1.0]), ps("c", [0.5])], ["a"], [2.0])
        a = simulate_network(net, (3,), horizon=5000.0, seed=9)
        b = simulate_network(net, (3,), horizon=5000.0, seed=9)
        assert a.throughputs == b.throughputs
        assert a.cycle_times == b.cycle_times
