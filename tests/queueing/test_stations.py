"""Unit tests for station descriptions."""

import pytest

from repro.queueing.stations import Station, StationKind, delay, fcfs, multiserver, ps


class TestConstruction:
    def test_ps_allows_class_dependent_demands(self):
        station = ps("cpu", [0.05, 1.0])
        assert station.kind is StationKind.PS
        assert station.demands == (0.05, 1.0)

    def test_fcfs_rejects_class_dependent_demands(self):
        with pytest.raises(ValueError, match="class-independent"):
            fcfs("disk", [1.0, 2.0])

    def test_fcfs_allows_zero_demand_classes(self):
        # A class that skips the station entirely is fine.
        station = fcfs("disk", [1.0, 0.0, 1.0])
        assert station.demands == (1.0, 0.0, 1.0)

    def test_multiserver_requires_class_independent(self):
        with pytest.raises(ValueError):
            multiserver("disk", [1.0, 2.0], servers=2)

    def test_multiserver_requires_positive_servers(self):
        with pytest.raises(ValueError):
            Station("d", StationKind.MULTISERVER, (1.0,), servers=0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            ps("cpu", [-0.1])

    def test_empty_demands_rejected(self):
        with pytest.raises(ValueError):
            ps("cpu", [])


class TestProperties:
    def test_class_count(self):
        assert ps("cpu", [1.0, 2.0, 3.0]).class_count == 3

    def test_is_queueing(self):
        assert ps("cpu", [1.0]).is_queueing
        assert fcfs("d", [1.0]).is_queueing
        assert not delay("think", [1.0]).is_queueing

    def test_is_load_dependent(self):
        assert multiserver("d", [1.0], servers=2).is_load_dependent
        assert not multiserver("d", [1.0], servers=1).is_load_dependent
        assert not fcfs("d", [1.0]).is_load_dependent

    def test_rate_multiplier_multiserver(self):
        station = multiserver("d", [1.0], servers=3)
        assert station.rate_multiplier(0) == 0.0
        assert station.rate_multiplier(1) == 1.0
        assert station.rate_multiplier(2) == 2.0
        assert station.rate_multiplier(3) == 3.0
        assert station.rate_multiplier(9) == 3.0

    def test_rate_multiplier_delay_scales_linearly(self):
        station = delay("think", [1.0])
        assert station.rate_multiplier(5) == 5.0

    def test_rate_multiplier_single_server(self):
        station = fcfs("d", [1.0])
        assert station.rate_multiplier(1) == 1.0
        assert station.rate_multiplier(7) == 1.0
