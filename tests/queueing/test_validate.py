"""Unit tests for the closed-form references used in validation."""

import math

import pytest

from repro.queueing.validate import (
    machine_repairman_throughput,
    mm1_queue_length,
    mmc_erlang_c,
    mmc_mean_wait,
)


class TestMachineRepairman:
    def test_one_machine(self):
        # Cycle = think + service; X = 1 / (think + service).
        assert machine_repairman_throughput(1, 9.0, 1.0) == pytest.approx(0.1)

    def test_saturation_limit(self):
        # Many machines: the repairman saturates at 1/service.
        x = machine_repairman_throughput(200, 1.0, 1.0)
        assert x == pytest.approx(1.0, rel=1e-6)

    def test_monotone_in_machines(self):
        values = [machine_repairman_throughput(n, 10.0, 1.0) for n in (1, 2, 4, 8)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_zero_think_time(self):
        assert machine_repairman_throughput(3, 0.0, 2.0) == pytest.approx(0.5)

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            machine_repairman_throughput(0, 1.0, 1.0)


class TestMM1:
    def test_known_value(self):
        assert mm1_queue_length(0.5) == pytest.approx(1.0)
        assert mm1_queue_length(0.9) == pytest.approx(9.0)

    def test_zero_load(self):
        assert mm1_queue_length(0.0) == 0.0

    def test_rejects_unstable(self):
        with pytest.raises(ValueError):
            mm1_queue_length(1.0)


class TestErlangC:
    def test_single_server_equals_utilization(self):
        # For c=1 the queueing probability is rho.
        assert mmc_erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_known_two_server_value(self):
        # Standard textbook value: c=2, a=1 -> C = 1/3.
        assert mmc_erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_decreases_with_servers_at_fixed_load(self):
        values = [mmc_erlang_c(c, 0.9) for c in (1, 2, 4)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_rejects_overload(self):
        with pytest.raises(ValueError):
            mmc_erlang_c(2, 2.0)

    def test_mean_wait_single_server(self):
        # M/M/1: Wq = rho * s / (1 - rho).
        s, lam = 1.0, 0.5
        rho = lam * s
        expected = rho * s / (1 - rho)
        assert mmc_mean_wait(1, lam, s) == pytest.approx(expected)
