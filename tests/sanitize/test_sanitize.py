"""The runtime determinism sanitizer: tracing, comparison, CLI."""

from __future__ import annotations

import pytest

from repro.sanitize import (
    MAX_KEPT_RECORDS,
    DeterminismTrace,
    capture_trace,
    compare_replays,
    main,
    smoke_scenario,
)
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams


def _noop() -> None:
    pass


# ----------------------------------------------------------------------
# Trace plumbing
# ----------------------------------------------------------------------


def test_draws_are_recorded_with_stream_name_and_value():
    with capture_trace() as trace:
        streams = RandomStreams(master_seed=7)
        rng = streams.stream("workload.think")
        value = rng.expovariate(1.0)
    (record,) = trace.records
    assert record == f"draw workload.think expovariate {value!r}"
    assert trace.count == 1


def test_shuffle_is_recorded_despite_returning_none():
    with capture_trace() as trace:
        rng = RandomStreams(master_seed=7).stream("s")
        rng.shuffle([1, 2, 3])
    (record,) = trace.records
    assert record == "draw s shuffle '<shuffle>'"


def test_same_stream_fetched_twice_is_one_proxy():
    with capture_trace():
        streams = RandomStreams(master_seed=7)
        assert streams.stream("a") is streams.stream("a")


def test_event_pops_are_recorded():
    with capture_trace() as trace:
        queue = EventQueue()
        queue.push(Event(2.0, _noop, label="second"))
        queue.push(Event(1.0, _noop, label="first"))
        queue.pop()
        queue.pop()
    assert len(trace.records) == 2
    assert "label=first" in trace.records[0]
    assert "label=second" in trace.records[1]
    assert "t=1.0" in trace.records[0]


def test_pop_due_past_horizon_records_nothing():
    with capture_trace() as trace:
        queue = EventQueue()
        queue.push(Event(5.0, _noop))
        assert queue.pop_due(1.0) is None
    assert trace.records == []


def test_patches_are_restored_after_exit():
    original_stream = RandomStreams.stream
    original_pop = EventQueue.pop
    with capture_trace():
        assert RandomStreams.stream is not original_stream
        assert EventQueue.pop is not original_pop
    assert RandomStreams.stream is original_stream
    assert EventQueue.pop is original_pop
    # And draws outside the context are plain random.Random draws.
    rng = RandomStreams(master_seed=7).stream("s")
    assert type(rng).__module__ == "random"


def test_patches_are_restored_when_the_block_raises():
    original_stream = RandomStreams.stream
    with pytest.raises(RuntimeError):
        with capture_trace():
            raise RuntimeError("boom")
    assert RandomStreams.stream is original_stream


def test_digest_covers_records_beyond_the_kept_window():
    first = DeterminismTrace()
    second = DeterminismTrace()
    for trace in (first, second):
        trace.records = ["x"] * MAX_KEPT_RECORDS  # window already full
    first.add("tail-a")
    second.add("tail-b")
    assert first.dropped == second.dropped == 1
    assert first.hexdigest() != second.hexdigest()


# ----------------------------------------------------------------------
# Replay comparison
# ----------------------------------------------------------------------


def test_compare_replays_identical_for_deterministic_scenario():
    def scenario():
        streams = RandomStreams(master_seed=3)
        rng = streams.stream("demo")
        return [rng.random() for _ in range(10)]

    report = compare_replays(scenario)
    assert report.identical
    assert report.records == (10, 10)
    assert report.digests[0] == report.digests[1]
    assert report.divergence is None
    assert "replays identical" in report.render()


def test_compare_replays_localizes_first_divergence():
    seeds = iter([1, 2])

    def scenario():
        rng = RandomStreams(master_seed=next(seeds)).stream("demo")
        rng.random()
        return rng.expovariate(1.0)

    report = compare_replays(scenario)
    assert not report.identical
    assert report.divergence is not None
    assert report.divergence.index == 0
    assert report.divergence.first != report.divergence.second
    rendered = report.render()
    assert "DIVERGED" in rendered
    assert "first divergence at record 0" in rendered


def test_compare_replays_needs_two_runs():
    with pytest.raises(ValueError, match="at least 2"):
        compare_replays(lambda: None, runs=1)


# ----------------------------------------------------------------------
# The smoke scenario and CLI
# ----------------------------------------------------------------------


def test_smoke_scenario_replays_identically(capsys):
    # Short horizon, faults + telemetry armed: the full acceptance check.
    report = compare_replays(smoke_scenario(seed=11))
    assert report.identical
    assert report.records[0] > 1000  # the run really was instrumented


def test_cli_smoke_exits_zero(capsys):
    assert main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "replays identical" in out


def test_cli_without_smoke_is_usage_error(capsys):
    assert main([]) == 2
