"""Unit tests for the simulation engine (clock and event loop)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import ProcessError, SchedulingError
from repro.sim.process import Hold


class TestScheduling:
    def test_schedule_fires_at_offset(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_schedule_at_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("no"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_overrides_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("normal"))
        sim.schedule(1.0, lambda: order.append("urgent"), priority=-1)
        sim.run()
        assert order == ["urgent", "normal"]

    def test_callback_may_schedule_more(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunControl:
    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert sim.pending_events == 1

    def test_run_until_resumable(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run(until=4.0)
        sim.run(until=20.0)
        assert fired == [True]
        assert sim.now == 20.0

    def test_clock_advances_to_horizon_when_drained(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_run_without_horizon_drains_queue(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert sim.now == 3.0
        assert sim.pending_events == 0

    def test_max_events(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.events_fired == 4
        assert sim.pending_events == 6

    def test_step_on_empty_queue_returns_false(self):
        sim = Simulator()
        assert sim.step() is False

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def evil():
            with pytest.raises(ProcessError):
                sim.run()

        sim.schedule(0.0, evil)
        sim.run()

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_fired == 3


class TestLaunch:
    def test_launch_runs_generator(self):
        sim = Simulator()
        steps = []

        def proc():
            steps.append(sim.now)
            yield Hold(2.0)
            steps.append(sim.now)

        sim.launch(proc())
        sim.run()
        assert steps == [0.0, 2.0]

    def test_launch_with_delay(self):
        sim = Simulator()
        steps = []

        def proc():
            steps.append(sim.now)
            yield Hold(0.0)

        sim.launch(proc(), delay=5.0)
        sim.run()
        assert steps == [5.0]

    def test_trace_hook_receives_labels(self):
        lines = []
        sim = Simulator(trace=lambda t, text: lines.append((t, text)))
        sim.schedule(1.0, lambda: None, label="hello")
        sim.run()
        assert (1.0, "hello") in lines
