"""Unit tests for the event objects and the future-event list."""

import math

import pytest

from repro.sim.errors import SchedulingError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue, validate_delay


def _noop() -> None:
    pass


class TestEvent:
    def test_defaults(self):
        event = Event(1.5, _noop)
        assert event.time == 1.5
        assert event.priority == DEFAULT_PRIORITY
        assert not event.cancelled

    def test_cancel_is_idempotent(self):
        event = Event(0.0, _noop)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_ordering_by_time(self):
        early = Event(1.0, _noop)
        late = Event(2.0, _noop)
        early.seq, late.seq = 1, 0
        assert early < late
        assert not late < early

    def test_ordering_by_priority_at_same_time(self):
        urgent = Event(1.0, _noop, priority=-1)
        normal = Event(1.0, _noop)
        urgent.seq, normal.seq = 5, 0
        assert urgent < normal

    def test_ordering_fifo_at_same_time_and_priority(self):
        first = Event(1.0, _noop)
        second = Event(1.0, _noop)
        first.seq, second.seq = 0, 1
        assert first < second


class TestEventQueue:
    def test_push_pop_in_time_order(self):
        queue = EventQueue()
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for t in times:
            queue.push(Event(t, _noop))
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    def test_fifo_among_simultaneous_events(self):
        queue = EventQueue()
        labels = []
        events = [Event(1.0, _noop, label=str(i)) for i in range(10)]
        for event in events:
            queue.push(event)
        for _ in range(10):
            labels.append(queue.pop().label)
        assert labels == [str(i) for i in range(10)]

    def test_len_counts_live_events(self):
        queue = EventQueue()
        a = queue.push(Event(1.0, _noop))
        queue.push(Event(2.0, _noop))
        assert len(queue) == 2
        queue.cancel(a)
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        a = queue.push(Event(1.0, _noop, label="a"))
        queue.push(Event(2.0, _noop, label="b"))
        queue.cancel(a)
        assert queue.pop().label == "b"

    def test_cancel_twice_does_not_corrupt_count(self):
        queue = EventQueue()
        a = queue.push(Event(1.0, _noop))
        queue.push(Event(2.0, _noop))
        queue.cancel(a)
        queue.cancel(a)
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(Event(3.0, _noop))
        queue.push(Event(1.0, _noop))
        assert queue.peek_time() == 1.0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        a = queue.push(Event(1.0, _noop))
        queue.push(Event(2.0, _noop))
        queue.cancel(a)
        assert queue.peek_time() == 2.0

    def test_pop_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(SchedulingError):
            queue.pop()

    def test_bool(self):
        queue = EventQueue()
        assert not queue
        event = queue.push(Event(1.0, _noop))
        assert queue
        queue.cancel(event)
        assert not queue

    def test_clear(self):
        queue = EventQueue()
        for t in (1.0, 2.0):
            queue.push(Event(t, _noop))
        queue.clear()
        assert len(queue) == 0
        assert queue.peek_time() is None


class TestValidateDelay:
    def test_accepts_zero_and_positive(self):
        assert validate_delay(0.0, 0.0) == 0.0
        assert validate_delay(0.0, 2.5) == 2.5

    def test_rejects_negative(self):
        with pytest.raises(SchedulingError):
            validate_delay(10.0, -0.001)

    def test_rejects_nan(self):
        with pytest.raises(SchedulingError):
            validate_delay(0.0, math.nan)

    def test_rejects_infinity(self):
        with pytest.raises(SchedulingError):
            validate_delay(0.0, math.inf)
        with pytest.raises(SchedulingError):
            validate_delay(0.0, -math.inf)


class TestCancelAfterFire:
    """Regression: cancelling a fired (or cancelled) event is a no-op.

    Before the fix, cancelling an event that had already been popped
    decremented the live counter a second time, silently corrupting
    ``len(queue)`` — exactly what the fault injector does when a crash
    retracts a same-timestamp completion event that already fired.
    """

    def test_pop_sets_fired(self):
        queue = EventQueue()
        event = queue.push(Event(1.0, _noop))
        assert not event.fired
        assert queue.pop() is event
        assert event.fired

    def test_cancel_after_fire_is_noop(self):
        queue = EventQueue()
        fired = queue.push(Event(1.0, _noop))
        queue.push(Event(2.0, _noop))
        assert queue.pop() is fired
        before = len(queue)
        queue.cancel(fired)  # documented no-op
        assert len(queue) == before == 1
        assert not fired.cancelled  # it ran; it was never retracted
        assert queue.pop().time == 2.0

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        victim = queue.push(Event(1.0, _noop))
        queue.push(Event(2.0, _noop))
        queue.cancel(victim)
        queue.cancel(victim)
        assert len(queue) == 1
        assert queue.pop().time == 2.0
