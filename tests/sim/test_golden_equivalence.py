"""Golden-trace equivalence: the standing license for kernel refactors.

Every case replays a recorded (seed x policy x fault-plan) run and
asserts byte-identity — full ``SystemResults`` JSON, telemetry-JSONL
digest, timeline-CSV digest, kernel TraceMessage digest, and the
``--jobs 2`` vs serial batch — against digests recorded from the **seed
kernel** (see ``tests/golden/corpus.py``).  A failure here means the
change is not a refactor: it altered event ordering, floating-point
arithmetic, RNG consumption, or telemetry emission.

Recordings are regenerated only by
``tools/regen_golden.py --i-know-this-changes-behavior``.
"""

import pytest

from tests.golden import corpus


@pytest.fixture(scope="module")
def manifest():
    return corpus.load_manifest()


def test_manifest_format_matches_corpus(manifest):
    assert manifest["format"] == corpus.CORPUS_FORMAT
    assert set(manifest["cases"]) == {case.name for case in corpus.CASES}


@pytest.mark.parametrize("case", corpus.CASES, ids=lambda case: case.name)
class TestRecordedCases:
    def test_replays_byte_identical(self, case, manifest):
        recorded = manifest["cases"][case.name]
        outcome = corpus.run_case(case)
        # Full-dict comparison first: a mismatch shows *which* metric
        # diverged instead of just two hashes.
        assert outcome["results"] == corpus.load_recorded_results(case.name)
        assert outcome["results_sha256"] == recorded["results_sha256"]
        assert outcome["events_sha256"] == recorded["events_sha256"]
        assert outcome["timeline_sha256"] == recorded["timeline_sha256"]


def test_kernel_trace_stream_byte_identical(manifest):
    outcome = corpus.run_trace_case()
    assert outcome["trace_messages"] == manifest["trace"]["trace_messages"]
    assert outcome["trace_sha256"] == manifest["trace"]["trace_sha256"]


class TestCalendarQueueMode:
    """The optional calendar queue must replay heap-recorded digests.

    Cross-implementation byte-identity is the strongest statement of the
    future-event-list contract: identical ``(time, priority, seq)``
    ordering, identical lazy-deletion semantics.
    """

    def test_faulted_case_matches_heap_recording(self, manifest):
        case = corpus.CASES[3]  # random_faulted_seed5: exercises cancels
        assert case.faulted
        recorded = manifest["cases"][case.name]
        outcome = corpus.run_case(case, queue="calendar")
        assert outcome["results_sha256"] == recorded["results_sha256"]
        assert outcome["events_sha256"] == recorded["events_sha256"]
        assert outcome["timeline_sha256"] == recorded["timeline_sha256"]

    def test_trace_stream_matches_heap_recording(self, manifest):
        outcome = corpus.run_trace_case(queue="calendar")
        assert outcome["trace_sha256"] == manifest["trace"]["trace_sha256"]


class TestJobsEquivalence:
    def test_serial_batch_matches_recording(self, manifest):
        assert corpus.run_jobs_batch(jobs=1) == manifest["jobs"]["results_sha256"]

    def test_two_workers_match_recording(self, manifest):
        assert corpus.run_jobs_batch(jobs=2) == manifest["jobs"]["results_sha256"]
