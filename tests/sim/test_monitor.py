"""Unit tests for the statistics monitors."""

import math
import statistics

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import MonitorError
from repro.sim.monitor import Tally, TimeWeighted


class TestTally:
    def test_mean_and_variance_match_statistics_module(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        tally = Tally()
        for x in data:
            tally.record(x)
        assert tally.mean == pytest.approx(statistics.mean(data))
        assert tally.variance == pytest.approx(statistics.variance(data))
        assert tally.stdev == pytest.approx(statistics.stdev(data))

    def test_min_max_total_count(self):
        tally = Tally()
        for x in (2.0, -1.0, 7.0):
            tally.record(x)
        assert tally.minimum == -1.0
        assert tally.maximum == 7.0
        assert tally.total == 8.0
        assert tally.count == 3

    def test_empty_tally_defaults(self):
        tally = Tally()
        assert tally.mean == 0.0
        assert tally.variance == 0.0
        with pytest.raises(MonitorError):
            _ = tally.minimum

    def test_single_observation_variance_zero(self):
        tally = Tally()
        tally.record(5.0)
        assert tally.variance == 0.0

    def test_keep_retains_observations(self):
        tally = Tally(keep=True)
        for x in (1.0, 2.0, 3.0):
            tally.record(x)
        assert tally.observations == [1.0, 2.0, 3.0]

    def test_keep_false_retains_nothing(self):
        tally = Tally(keep=False)
        tally.record(1.0)
        assert tally.observations == []

    def test_reset(self):
        tally = Tally(keep=True)
        tally.record(1.0)
        tally.reset()
        assert tally.count == 0
        assert tally.observations == []
        assert tally.mean == 0.0

    def test_nan_rejected(self):
        tally = Tally()
        with pytest.raises(MonitorError):
            tally.record(math.nan)

    def test_numerical_stability_large_offset(self):
        # Welford should survive a large common offset.
        tally = Tally()
        base = 1e12
        for x in (base + 1, base + 2, base + 3):
            tally.record(x)
        assert tally.variance == pytest.approx(1.0, rel=1e-6)


class TestTimeWeighted:
    def test_piecewise_constant_integral(self):
        sim = Simulator()
        monitor = TimeWeighted(sim, initial=0.0)
        sim.schedule(2.0, lambda: monitor.set(3.0))
        sim.schedule(6.0, lambda: monitor.set(1.0))
        sim.run(until=10.0)
        # integral = 0*2 + 3*4 + 1*4 = 16 over 10 units.
        assert monitor.time_average == pytest.approx(1.6)

    def test_add_deltas(self):
        sim = Simulator()
        monitor = TimeWeighted(sim)
        sim.schedule(1.0, lambda: monitor.add(2.0))
        sim.schedule(3.0, lambda: monitor.add(-1.0))
        sim.run(until=4.0)
        # 0 for [0,1), 2 for [1,3), 1 for [3,4): integral 5 over 4.
        assert monitor.time_average == pytest.approx(1.25)
        assert monitor.value == 1.0

    def test_initial_value_counts(self):
        sim = Simulator()
        monitor = TimeWeighted(sim, initial=5.0)
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert monitor.time_average == pytest.approx(5.0)

    def test_maximum_tracked(self):
        sim = Simulator()
        monitor = TimeWeighted(sim)
        sim.schedule(1.0, lambda: monitor.set(7.0))
        sim.schedule(2.0, lambda: monitor.set(2.0))
        sim.run()
        assert monitor.maximum == 7.0

    def test_reset_preserves_value_drops_area(self):
        sim = Simulator()
        monitor = TimeWeighted(sim, initial=4.0)
        sim.schedule(5.0, lambda: monitor.reset())
        sim.run(until=10.0)
        assert monitor.time_average == pytest.approx(4.0)
        assert monitor.elapsed == pytest.approx(5.0)

    def test_zero_elapsed_returns_current_value(self):
        sim = Simulator()
        monitor = TimeWeighted(sim, initial=3.0)
        assert monitor.time_average == 3.0

    def test_average_with_warmup_truncation(self):
        # The canonical use: accumulate during warmup, reset, then measure.
        sim = Simulator()
        monitor = TimeWeighted(sim, initial=100.0)
        sim.schedule(10.0, lambda: monitor.set(1.0))
        sim.schedule(10.0, lambda: monitor.reset())
        sim.run(until=20.0)
        assert monitor.time_average == pytest.approx(1.0)
