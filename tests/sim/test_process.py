"""Unit tests for the process layer (generators driven by the kernel)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import ProcessError
from repro.sim.process import Hold, Passivate, ProcessState, WaitFor


class TestHold:
    def test_sequential_holds(self):
        sim = Simulator()
        times = []

        def proc():
            for _ in range(3):
                yield Hold(1.5)
                times.append(sim.now)

        sim.launch(proc())
        sim.run()
        assert times == [1.5, 3.0, 4.5]

    def test_zero_hold_keeps_time(self):
        sim = Simulator()
        times = []

        def proc():
            yield Hold(0.0)
            times.append(sim.now)

        sim.launch(proc())
        sim.run()
        assert times == [0.0]

    def test_negative_hold_raises(self):
        sim = Simulator()

        def proc():
            yield Hold(-1.0)

        sim.launch(proc())
        with pytest.raises(Exception):
            sim.run()


class TestPassivate:
    def test_reactivate_delivers_value(self):
        sim = Simulator()
        got = []

        def sleeper():
            value = yield Passivate()
            got.append((sim.now, value))

        process = sim.launch(sleeper())
        sim.schedule(3.0, lambda: process.reactivate("wake"))
        sim.run()
        assert got == [(3.0, "wake")]

    def test_reactivate_with_delay(self):
        sim = Simulator()
        got = []

        def sleeper():
            yield Passivate()
            got.append(sim.now)

        process = sim.launch(sleeper())
        sim.schedule(1.0, lambda: process.reactivate(delay=2.0))
        sim.run()
        assert got == [3.0]

    def test_reactivate_non_passive_raises(self):
        sim = Simulator()

        def proc():
            yield Hold(10.0)

        process = sim.launch(proc())
        sim.run(until=1.0)
        with pytest.raises(ProcessError):
            process.reactivate()

    def test_state_is_passive_while_sleeping(self):
        sim = Simulator()

        def sleeper():
            yield Passivate()

        process = sim.launch(sleeper())
        sim.run(until=1.0)
        assert process.state is ProcessState.PASSIVE


class TestWaitFor:
    def test_resume_via_callback(self):
        sim = Simulator()
        got = []
        resumers = []

        def proc():
            value = yield WaitFor(resumers.append)
            got.append((sim.now, value))

        sim.launch(proc())
        sim.run(until=1.0)
        assert len(resumers) == 1
        sim.schedule(4.0, lambda: resumers[0]("done"))
        sim.run()
        assert got == [(5.0, "done")]

    def test_immediate_resume(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield WaitFor(lambda resume: resume(42))
            got.append(value)

        sim.launch(proc())
        sim.run()
        assert got == [42]


class TestComposition:
    def test_yield_from_subbehaviour(self):
        sim = Simulator()
        log = []

        def step(name, duration):
            yield Hold(duration)
            log.append((name, sim.now))

        def proc():
            yield from step("a", 1.0)
            yield from step("b", 2.0)

        sim.launch(proc())
        sim.run()
        assert log == [("a", 1.0), ("b", 3.0)]

    def test_return_value_captured(self):
        sim = Simulator()

        def proc():
            yield Hold(1.0)
            return "result"

        process = sim.launch(proc())
        sim.run()
        assert process.terminated
        assert process.result == "result"

    def test_on_terminate_callback(self):
        sim = Simulator()
        seen = []

        def proc():
            yield Hold(1.0)

        process = sim.launch(proc())
        process.on_terminate(lambda p: seen.append(p.name))
        sim.run()
        assert seen == [process.name]

    def test_on_terminate_after_finish_fires_immediately(self):
        sim = Simulator()

        def proc():
            yield Hold(1.0)

        process = sim.launch(proc())
        sim.run()
        seen = []
        process.on_terminate(lambda p: seen.append(True))
        assert seen == [True]


class TestErrors:
    def test_yielding_non_command_raises(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.launch(proc())
        with pytest.raises(ProcessError):
            sim.run()

    def test_activate_twice_raises(self):
        sim = Simulator()

        def proc():
            yield Hold(1.0)

        process = sim.launch(proc())
        with pytest.raises(ProcessError):
            process.activate()

    def test_interrupt_delivers_exception(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield Hold(100.0)
            except RuntimeError as exc:
                caught.append((sim.now, str(exc)))

        process = sim.launch(proc())
        sim.schedule(2.0, lambda: process.interrupt(RuntimeError("preempted")))
        sim.run()
        assert caught == [(2.0, "preempted")]

    def test_interrupt_terminated_raises(self):
        sim = Simulator()

        def proc():
            yield Hold(1.0)

        process = sim.launch(proc())
        sim.run()
        with pytest.raises(ProcessError):
            process.interrupt(RuntimeError("too late"))

    def test_uncaught_process_exception_propagates(self):
        sim = Simulator()

        def proc():
            yield Hold(1.0)
            raise ValueError("model bug")

        sim.launch(proc())
        with pytest.raises(ValueError, match="model bug"):
            sim.run()
