"""Property-based tests (hypothesis) for the simulation kernel."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.process import Hold
from repro.sim.resources import FCFSServer, PSServer

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
demands = st.floats(min_value=0.001, max_value=100.0, allow_nan=False)


@given(st.lists(times, min_size=1, max_size=60))
def test_event_queue_pops_in_nondecreasing_time_order(time_list):
    queue = EventQueue()
    for t in time_list:
        queue.push(Event(t, lambda: None))
    popped = [queue.pop().time for _ in range(len(time_list))]
    assert popped == sorted(time_list)


@given(st.lists(st.tuples(times, st.booleans()), min_size=1, max_size=60))
def test_event_queue_len_matches_live_events(entries):
    queue = EventQueue()
    live = 0
    for t, keep in entries:
        event = queue.push(Event(t, lambda: None))
        if not keep:
            queue.cancel(event)
        else:
            live += 1
    assert len(queue) == live


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=2, max_size=100))
def test_tally_mean_between_min_and_max(data):
    tally = Tally()
    for x in data:
        tally.record(x)
    assert tally.minimum - 1e-9 <= tally.mean <= tally.maximum + 1e-9
    assert tally.variance >= 0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_time_weighted_average_within_value_range(segments):
    sim = Simulator()
    monitor = TimeWeighted(sim, initial=segments[0][1])
    t = 0.0
    values = [segments[0][1]]
    for duration, value in segments:
        t += duration
        sim.schedule_at(t, lambda v=value: monitor.set(v))
        values.append(value)
    sim.run(until=t + 1.0)
    average = monitor.time_average
    assert min(values) - 1e-9 <= average <= max(values) + 1e-9


@settings(deadline=None, max_examples=30)
@given(st.lists(st.tuples(times.filter(lambda x: x < 100), demands), min_size=1, max_size=25))
def test_fcfs_conserves_work(jobs):
    """Busy time integrated over the run equals total demand served."""
    sim = Simulator()
    server = FCFSServer(sim, servers=1)

    def job(arrival, demand):
        if arrival > 0:
            yield Hold(arrival)
        yield server.service(demand)

    for arrival, demand in jobs:
        sim.launch(job(arrival, demand))
    sim.run()
    total_demand = sum(d for _, d in jobs)
    busy_time = server.busy.time_average * sim.now
    assert busy_time == (
        math.inf if math.isinf(total_demand) else busy_time
    )  # guard, never inf here
    assert abs(busy_time - total_demand) < 1e-6 * max(1.0, total_demand)
    assert server.completions == len(jobs)


@settings(deadline=None, max_examples=30)
@given(st.lists(st.tuples(times.filter(lambda x: x < 100), demands), min_size=1, max_size=25))
def test_ps_conserves_work_and_completes_everyone(jobs):
    sim = Simulator()
    cpu = PSServer(sim)

    def job(arrival, demand):
        if arrival > 0:
            yield Hold(arrival)
        yield cpu.service(demand)

    for arrival, demand in jobs:
        sim.launch(job(arrival, demand))
    sim.run()
    total_demand = sum(d for _, d in jobs)
    busy_time = cpu.busy.time_average * sim.now
    assert abs(busy_time - total_demand) < 1e-6 * max(1.0, total_demand)
    assert cpu.completions == len(jobs)
    assert cpu.job_count == 0


@settings(deadline=None, max_examples=30)
@given(
    st.lists(demands, min_size=2, max_size=12),
    st.integers(min_value=1, max_value=4),
)
def test_fcfs_multiserver_never_idles_servers_while_queueing(job_demands, servers):
    """At no observation instant may a job queue while a server is free."""
    sim = Simulator()
    server = FCFSServer(sim, servers=servers)
    violations = []

    def job(demand):
        yield server.service(demand)

    def inspector():
        while True:
            yield Hold(0.25)
            if server.queue_depth > 0 and server.busy_servers < servers:
                violations.append(sim.now)
            if server.completions == len(job_demands):
                return

    for demand in job_demands:
        sim.launch(job(demand))
    sim.launch(inspector())
    sim.run(max_events=100000)
    assert violations == []
