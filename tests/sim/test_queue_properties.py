"""Property-based tests: every future-event list vs a naive reference.

Hypothesis drives randomized operation sequences against
:class:`~repro.sim.events.EventQueue` and
:class:`~repro.sim.events.CalendarQueue` (several bucket widths) and
checks them against an obviously-correct sorted-list model.  The pinned
contract:

* total order by ``(time, priority, insertion order)``;
* ``cancel`` after fire (or double-cancel) is a no-op;
* ``peek_time`` always names the time of the next live pop, ``None``
  exactly when no live events remain;
* FIFO among simultaneous equal-priority events.

Times are drawn from a small grid *and* a continuous range so that ties
(the interesting case for the heap's comparison path) occur constantly.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.errors import SchedulingError  # noqa: E402
from repro.sim.events import (  # noqa: E402
    CalendarQueue,
    Event,
    EventQueue,
    make_event_queue,
)

QUEUE_FACTORIES = [
    pytest.param(EventQueue, id="heap"),
    pytest.param(lambda: CalendarQueue(bucket_width=1.0), id="calendar-1.0"),
    pytest.param(lambda: CalendarQueue(bucket_width=0.75), id="calendar-0.75"),
    pytest.param(lambda: CalendarQueue(bucket_width=16.0), id="calendar-16"),
]

#: Mostly grid times (maximal tie pressure) with some continuous spice.
times = st.one_of(
    st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 10.0]),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
)
priorities = st.sampled_from([-2, -1, 0, 1, 5])


class ReferenceQueue:
    """The obviously-correct model: a list scanned for the minimum key."""

    def __init__(self):
        self._entries = []  # (time, priority, seq, tag, cancelled-flag list)
        self._seq = 0

    def push(self, time, priority, tag):
        self._entries.append([time, priority, self._seq, tag, False])
        self._seq += 1

    def cancel(self, tag):
        for entry in self._entries:
            if entry[3] == tag:
                entry[4] = True
                return

    def _live(self):
        return [entry for entry in self._entries if not entry[4]]

    def __len__(self):
        return len(self._live())

    def peek_time(self):
        live = self._live()
        if not live:
            return None
        return min(live, key=lambda entry: entry[:3])[0]

    def pop(self):
        live = self._live()
        entry = min(live, key=lambda entry: entry[:3])
        self._entries.remove(entry)
        return entry[3]


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
@given(items=st.lists(st.tuples(times, priorities), max_size=40))
@settings(max_examples=60, deadline=None)
def test_drain_order_matches_reference(factory, items):
    queue = factory()
    model = ReferenceQueue()
    events = []
    for tag, (time, priority) in enumerate(items):
        event = Event(time, lambda: None, priority=priority, label=str(tag))
        queue.push(event)
        events.append(event)
        model.push(time, priority, tag)
    while queue:
        assert queue.peek_time() == model.peek_time()
        assert int(queue.pop().label) == model.pop()
    assert queue.peek_time() is None
    assert len(model) == 0


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
@given(
    items=st.lists(st.tuples(times, priorities), min_size=1, max_size=30),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_interleaved_cancel_matches_reference(factory, items, data):
    queue = factory()
    model = ReferenceQueue()
    events = {}
    for tag, (time, priority) in enumerate(items):
        event = Event(time, lambda: None, priority=priority, label=str(tag))
        queue.push(event)
        events[tag] = event
        model.push(time, priority, tag)
    cancelled = data.draw(
        st.lists(st.sampled_from(sorted(events)), unique=True, max_size=len(events))
    )
    for tag in cancelled:
        queue.cancel(events[tag])
        model.cancel(tag)
    assert len(queue) == len(model)
    while queue:
        assert queue.peek_time() == model.peek_time()
        assert int(queue.pop().label) == model.pop()
    assert len(model) == 0
    with pytest.raises(SchedulingError):
        queue.pop()


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
@given(items=st.lists(st.tuples(times, priorities), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_cancel_after_fire_is_noop(factory, items):
    queue = factory()
    for tag, (time, priority) in enumerate(items):
        queue.push(Event(time, lambda: None, priority=priority, label=str(tag)))
    size_before = len(queue)
    fired = queue.pop()
    assert fired.fired
    queue.cancel(fired)  # documented no-op
    assert not fired.cancelled
    assert len(queue) == size_before - 1
    # Double-cancel of a live event is also a no-op for the live count.
    if queue:
        victim_time = queue.peek_time()
        victim = queue.pop()
        requeued = Event(victim.time, lambda: None, priority=victim.priority)
        queue.push(requeued)
        assert queue.peek_time() is not None
        queue.cancel(requeued)
        queue.cancel(requeued)
        assert len(queue) == size_before - 2
        assert victim.time == victim_time


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
@given(count=st.integers(min_value=2, max_value=50), time=times)
@settings(max_examples=40, deadline=None)
def test_fifo_among_simultaneous(factory, count, time):
    queue = factory()
    for tag in range(count):
        queue.push(Event(time, lambda: None, label=str(tag)))
    drained = [int(queue.pop().label) for _ in range(count)]
    assert drained == list(range(count))


@pytest.mark.parametrize("kind", ["heap", "calendar"])
@given(items=st.lists(times, min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_rent_orders_like_push_and_reuses_objects(kind, items):
    """Rented events drain in (time, insertion) order; recycling reuses."""
    queue = make_event_queue(kind)
    for tag, time in enumerate(items):
        queue.rent(time, lambda: None, str(tag))
    model = sorted(range(len(items)), key=lambda tag: (items[tag], tag))
    seen = []
    drained = []
    while queue:
        event = queue.pop()
        drained.append(int(event.label))
        seen.append(event)
        queue.recycle(event)
    assert drained == model
    # The free-list hands back the recycled objects rather than allocating.
    reused = queue.rent(0.0, lambda: None, "reused")
    assert reused in seen


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
def test_pop_empty_raises(factory):
    queue = factory()
    assert queue.peek_time() is None
    with pytest.raises(SchedulingError):
        queue.pop()


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
@given(
    items=st.lists(st.tuples(times, priorities), min_size=1, max_size=25),
    horizon=times,
)
@settings(max_examples=60, deadline=None)
def test_pop_due_respects_horizon(factory, items, horizon):
    queue = factory()
    model = ReferenceQueue()
    for tag, (time, priority) in enumerate(items):
        queue.push(Event(time, lambda: None, priority=priority, label=str(tag)))
        model.push(time, priority, tag)
    while True:
        due = queue.pop_due(horizon)
        if due is None:
            break
        assert due.time <= horizon
        assert int(due.label) == model.pop()
    remaining = model.peek_time()
    assert remaining is None or remaining > horizon
    assert queue.peek_time() == remaining
