"""Unit tests for the service-center resources (FCFS, PS, delay)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import ResourceError
from repro.sim.process import Hold
from repro.sim.resources import DelayStation, FCFSServer, PSServer


def run_jobs(sim, server, arrivals):
    """Launch jobs as (arrival_time, demand, tag); collect completions."""
    done = []

    def job(delay, demand, tag):
        if delay > 0:
            yield Hold(delay)
        yield server.service(demand)
        done.append((tag, sim.now))

    for delay, demand, tag in arrivals:
        sim.launch(job(delay, demand, tag))
    sim.run()
    return done


class TestFCFSSingle:
    def test_single_job_takes_demand(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        done = run_jobs(sim, server, [(0.0, 3.0, "a")])
        assert done == [("a", 3.0)]

    def test_jobs_served_in_order(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        done = run_jobs(
            sim, server, [(0.0, 2.0, "a"), (0.5, 2.0, "b"), (1.0, 2.0, "c")]
        )
        assert done == [("a", 2.0), ("b", 4.0), ("c", 6.0)]

    def test_short_job_does_not_preempt(self):
        # FCFS: a tiny job behind a big one still waits.
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        done = run_jobs(sim, server, [(0.0, 10.0, "big"), (1.0, 0.1, "small")])
        assert done == [("big", 10.0), ("small", 10.1)]

    def test_waiting_time_recorded(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        run_jobs(sim, server, [(0.0, 2.0, "a"), (0.0, 2.0, "b")])
        # a waits 0, b waits 2.
        assert server.waits.count == 2
        assert server.waits.mean == pytest.approx(1.0)

    def test_utilization(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)

        def job():
            yield server.service(3.0)

        sim.launch(job())
        sim.run(until=6.0)
        assert server.utilization() == pytest.approx(0.5)

    def test_completions_counted(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        run_jobs(sim, server, [(0.0, 1.0, "a"), (0.0, 1.0, "b")])
        assert server.completions == 2

    def test_zero_demand_completes_immediately(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        done = run_jobs(sim, server, [(1.0, 0.0, "a")])
        assert done == [("a", 1.0)]

    def test_invalid_demand_rejected(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        with pytest.raises(ResourceError):
            server.service(-1.0)
        with pytest.raises(ResourceError):
            server.service(float("nan"))

    def test_invalid_server_count_rejected(self):
        sim = Simulator()
        with pytest.raises(ResourceError):
            FCFSServer(sim, servers=0)


class TestFCFSMultiServer:
    def test_two_servers_run_in_parallel(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=2)
        done = run_jobs(sim, server, [(0.0, 4.0, "a"), (0.0, 4.0, "b")])
        assert done == [("a", 4.0), ("b", 4.0)]

    def test_third_job_waits_for_first_free_server(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=2)
        done = run_jobs(
            sim, server, [(0.0, 4.0, "a"), (0.0, 2.0, "b"), (0.0, 3.0, "c")]
        )
        # b frees a server at 2; c runs 2..5.
        assert ("b", 2.0) in done
        assert ("c", 5.0) in done

    def test_queue_depth_and_busy(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=2)

        def job(demand):
            yield server.service(demand)

        for _ in range(4):
            sim.launch(job(10.0))
        sim.run(until=1.0)
        assert server.busy_servers == 2
        assert server.queue_depth == 2

    def test_multiserver_utilization_normalized(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=2)
        run_jobs(sim, server, [(0.0, 4.0, "a"), (0.0, 4.0, "b")])
        # Both servers busy the whole 4 units: utilization 1.0 per server.
        assert server.utilization() == pytest.approx(1.0)


class TestPSServer:
    def test_single_job_takes_demand(self):
        sim = Simulator()
        cpu = PSServer(sim)
        done = run_jobs(sim, cpu, [(0.0, 3.0, "a")])
        assert done == [("a", 3.0)]

    def test_two_equal_jobs_share_equally(self):
        # Two jobs of demand 2 arriving together: each sees rate 1/2, both
        # finish at t=4.
        sim = Simulator()
        cpu = PSServer(sim)
        done = run_jobs(sim, cpu, [(0.0, 2.0, "a"), (0.0, 2.0, "b")])
        assert [t for _, t in done] == pytest.approx([4.0, 4.0])

    def test_staggered_arrivals_exact_times(self):
        # A (demand 2) at t=0; B (demand 2) at t=1.  A has 1 unit left at
        # t=1, then shares: A done at t=3; B then runs alone, done at t=4.
        sim = Simulator()
        cpu = PSServer(sim)
        done = run_jobs(sim, cpu, [(0.0, 2.0, "a"), (1.0, 2.0, "b")])
        assert done == [("a", pytest.approx(3.0)), ("b", pytest.approx(4.0))]

    def test_short_job_overtakes_long_job(self):
        # PS lets a short job finish before an earlier long one.
        sim = Simulator()
        cpu = PSServer(sim)
        done = run_jobs(sim, cpu, [(0.0, 10.0, "long"), (1.0, 1.0, "short")])
        names = [n for n, _ in done]
        assert names == ["short", "long"]
        # short: enters at 1 with demand 1 at rate 1/2 -> done at 3.
        assert done[0][1] == pytest.approx(3.0)
        # long: 1 unit before t=1, 1 unit shared during [1,3], rest alone.
        assert done[1][1] == pytest.approx(11.0)

    def test_work_conservation(self):
        # Total busy time equals total demand when the server never idles.
        sim = Simulator()
        cpu = PSServer(sim)
        demands = [1.0, 2.0, 3.0]
        run_jobs(sim, cpu, [(0.0, d, str(i)) for i, d in enumerate(demands)])
        assert sim.now == pytest.approx(sum(demands))

    def test_busy_indicator(self):
        sim = Simulator()
        cpu = PSServer(sim)

        def job():
            yield Hold(1.0)
            yield cpu.service(2.0)

        sim.launch(job())
        sim.run(until=4.0)
        # Busy during [1, 3] out of [0, 4].
        assert cpu.utilization() == pytest.approx(0.5)

    def test_population_average(self):
        sim = Simulator()
        cpu = PSServer(sim)
        run_jobs(sim, cpu, [(0.0, 2.0, "a"), (0.0, 2.0, "b")])
        # 2 jobs present during the whole run.
        assert cpu.population.time_average == pytest.approx(2.0)

    def test_many_jobs_all_finish(self):
        sim = Simulator()
        cpu = PSServer(sim)
        done = run_jobs(
            sim, cpu, [(i * 0.1, 1.0 + (i % 3), str(i)) for i in range(50)]
        )
        assert len(done) == 50
        assert cpu.job_count == 0


class TestDelayStation:
    def test_no_queueing(self):
        sim = Simulator()
        delay = DelayStation(sim)
        done = run_jobs(
            sim, delay, [(0.0, 5.0, "a"), (0.0, 5.0, "b"), (0.0, 5.0, "c")]
        )
        assert [t for _, t in done] == pytest.approx([5.0, 5.0, 5.0])

    def test_response_equals_demand(self):
        sim = Simulator()
        delay = DelayStation(sim)
        run_jobs(sim, delay, [(0.0, 3.0, "a")])
        assert delay.responses.mean == pytest.approx(3.0)


class TestStatisticsReset:
    def test_reset_truncates_everything(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        run_jobs(sim, server, [(0.0, 2.0, "a")])
        server.reset_statistics()
        assert server.completions == 0
        assert server.waits.count == 0
        assert server.population.time_average == 0.0
