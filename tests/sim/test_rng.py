"""Unit tests for random streams and distribution objects."""

import math
import random

import pytest

from repro.sim.errors import SimulationError
from repro.sim.rng import (
    Constant,
    Discrete,
    Exponential,
    Geometric,
    RandomStreams,
    Uniform,
    UniformAround,
    bernoulli,
    choose_index,
)


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(42).stream("think")
        b = RandomStreams(42).stream("think")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("s") is streams.stream("s")

    def test_drawing_from_one_stream_does_not_disturb_another(self):
        # The common-random-numbers property: consuming stream "a" heavily
        # must not change what "b" produces.
        light = RandomStreams(7)
        heavy = RandomStreams(7)
        for _ in range(1000):
            heavy.stream("a").random()
        assert light.stream("b").random() == heavy.stream("b").random()

    def test_spawn_is_deterministic_and_distinct(self):
        parent = RandomStreams(5)
        child1 = parent.spawn("rep1")
        child2 = parent.spawn("rep2")
        again = RandomStreams(5).spawn("rep1")
        assert child1.stream("x").random() == again.stream("x").random()
        assert child1.master_seed != child2.master_seed

    def test_stability_across_processes(self):
        # Seeds derive via blake2b, not hash(): a fixed value pins this.
        stream = RandomStreams(0).stream("stability-check")
        first = stream.random()
        assert first == RandomStreams(0).stream("stability-check").random()


class TestDistributions:
    def setup_method(self):
        self.rng = random.Random(1234)

    def test_constant(self):
        dist = Constant(2.5)
        assert dist.sample(self.rng) == 2.5
        assert dist.mean == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(SimulationError):
            Constant(-1.0)

    def test_exponential_mean(self):
        dist = Exponential(4.0)
        samples = [dist.sample(self.rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(4.0, rel=0.05)
        assert dist.mean == 4.0

    def test_exponential_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            Exponential(0.0)

    def test_uniform_bounds_and_mean(self):
        dist = Uniform(1.0, 3.0)
        samples = [dist.sample(self.rng) for _ in range(5000)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(SimulationError):
            Uniform(3.0, 1.0)

    def test_uniform_around(self):
        dist = UniformAround(center=1.0, relative_deviation=0.2)
        samples = [dist.sample(self.rng) for _ in range(5000)]
        assert all(0.8 <= s <= 1.2 for s in samples)
        assert dist.mean == 1.0

    def test_uniform_around_validation(self):
        with pytest.raises(SimulationError):
            UniformAround(center=0.0, relative_deviation=0.1)
        with pytest.raises(SimulationError):
            UniformAround(center=1.0, relative_deviation=1.5)

    def test_geometric_mean_and_support(self):
        dist = Geometric(5.0)
        samples = [dist.sample(self.rng) for _ in range(20000)]
        assert all(s >= 1 and s == int(s) for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.05)

    def test_geometric_degenerate_mean_one(self):
        dist = Geometric(1.0)
        assert dist.sample(self.rng) == 1.0

    def test_geometric_rejects_mean_below_one(self):
        with pytest.raises(SimulationError):
            Geometric(0.5)

    def test_discrete(self):
        dist = Discrete(values=(1.0, 10.0), weights=(3.0, 1.0))
        assert dist.mean == pytest.approx((3 * 1 + 1 * 10) / 4)
        samples = [dist.sample(self.rng) for _ in range(8000)]
        ones = sum(1 for s in samples if s == 1.0)
        assert ones / len(samples) == pytest.approx(0.75, abs=0.03)

    def test_discrete_validation(self):
        with pytest.raises(SimulationError):
            Discrete(values=(), weights=())
        with pytest.raises(SimulationError):
            Discrete(values=(1.0,), weights=(-1.0,))
        with pytest.raises(SimulationError):
            Discrete(values=(1.0, 2.0), weights=(1.0,))


class TestHelpers:
    def test_bernoulli_extremes(self):
        rng = random.Random(0)
        assert not any(bernoulli(rng, 0.0) for _ in range(100))
        assert all(bernoulli(rng, 1.0) for _ in range(100))

    def test_bernoulli_rejects_bad_probability(self):
        rng = random.Random(0)
        with pytest.raises(SimulationError):
            bernoulli(rng, 1.5)

    def test_choose_index_range(self):
        rng = random.Random(0)
        picks = {choose_index(rng, 4) for _ in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_choose_index_rejects_nonpositive(self):
        rng = random.Random(0)
        with pytest.raises(SimulationError):
            choose_index(rng, 0)
