"""Unit tests for output analysis (batch means and intervals)."""

import math

import pytest

from repro.sim.errors import MonitorError
from repro.sim.stats import IntervalEstimate, batch_means, mean_and_ci, relative_change


class TestBatchMeans:
    def test_constant_data_zero_half_width(self):
        estimate = batch_means([5.0] * 100, batches=10)
        assert estimate.mean == pytest.approx(5.0)
        assert estimate.half_width == pytest.approx(0.0)

    def test_mean_over_full_batches_only(self):
        # 7 observations, 3 batches of 2: the 7th is discarded.
        data = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 999.0]
        estimate = batch_means(data, batches=3)
        assert estimate.mean == pytest.approx(2.0)
        assert estimate.batches == 3

    def test_interval_contains_true_mean_for_iid_data(self):
        import random

        rng = random.Random(99)
        data = [rng.gauss(10.0, 2.0) for _ in range(2000)]
        estimate = batch_means(data, batches=20, confidence=0.99)
        assert estimate.low <= 10.0 <= estimate.high

    def test_more_data_narrows_interval(self):
        import random

        rng = random.Random(5)
        small = [rng.expovariate(1.0) for _ in range(200)]
        rng = random.Random(5)
        large = [rng.expovariate(1.0) for _ in range(20000)]
        assert (
            batch_means(large, batches=20).half_width
            < batch_means(small, batches=20).half_width
        )

    def test_too_few_observations_raises(self):
        with pytest.raises(MonitorError):
            batch_means([1.0, 2.0], batches=5)

    def test_bad_arguments_raise(self):
        with pytest.raises(MonitorError):
            batch_means([1.0] * 10, batches=1)
        with pytest.raises(MonitorError):
            batch_means([1.0] * 10, batches=2, confidence=1.5)


class TestMeanAndCI:
    def test_single_sample_infinite_interval(self):
        estimate = mean_and_ci([4.0])
        assert estimate.mean == 4.0
        assert math.isinf(estimate.half_width)

    def test_two_samples(self):
        estimate = mean_and_ci([1.0, 3.0], confidence=0.95)
        assert estimate.mean == pytest.approx(2.0)
        assert estimate.half_width > 0

    def test_empty_raises(self):
        with pytest.raises(MonitorError):
            mean_and_ci([])


class TestIntervalEstimate:
    def test_bounds(self):
        estimate = IntervalEstimate(mean=10.0, half_width=2.0, confidence=0.95, batches=20)
        assert estimate.low == 8.0
        assert estimate.high == 12.0
        assert estimate.relative_half_width == pytest.approx(0.2)

    def test_relative_half_width_zero_mean(self):
        estimate = IntervalEstimate(mean=0.0, half_width=1.0, confidence=0.95, batches=5)
        assert math.isinf(estimate.relative_half_width)

    def test_str_mentions_confidence(self):
        estimate = IntervalEstimate(mean=1.0, half_width=0.1, confidence=0.95, batches=20)
        assert "95%" in str(estimate)


class TestExactAccumulation:
    """Regression tests for the RL004 fix: fsum-based accumulation.

    ``sum()`` loses low-order bits in accumulation order; ``math.fsum`` is
    correctly rounded, so the estimators are exact on adversarial inputs
    and bit-identical under permutation of independent samples — the same
    guarantee the parallel runner's replication averaging relies on.
    """

    def test_mean_survives_catastrophic_cancellation(self):
        # Naive left-to-right sum() of these is 0.0 (the 1.0 is absorbed
        # into 1e16 and then cancelled); fsum recovers it exactly.
        samples = [1e16, 1.0, -1e16]
        estimate = mean_and_ci(samples)
        assert estimate.mean == 1.0 / 3.0

    def test_batch_means_survives_catastrophic_cancellation(self):
        data = [1e16, 1.0, -1e16, 3.0, 3.0, 3.0]
        estimate = batch_means(data, batches=2)
        # Batch 1 sums to exactly 1.0 -> mean 1/3; batch 2 mean 3.0.
        assert estimate.mean == (1.0 / 3.0 + 3.0) / 2.0

    def test_mean_and_ci_is_permutation_invariant(self):
        import random

        rng = random.Random(1234)
        samples = [
            rng.uniform(-1.0, 1.0) * (10.0 ** rng.randrange(-8, 9))
            for _ in range(257)
        ]
        baseline = mean_and_ci(samples)
        for shuffle_seed in range(5):
            shuffled = list(samples)
            random.Random(shuffle_seed).shuffle(shuffled)
            estimate = mean_and_ci(shuffled)
            # Bit-identical, not approximately equal.
            assert estimate.mean == baseline.mean
            assert estimate.half_width == baseline.half_width


class TestRelativeChange:
    def test_improvement_positive(self):
        assert relative_change(new=8.0, base=10.0) == pytest.approx(0.2)

    def test_regression_negative(self):
        assert relative_change(new=12.0, base=10.0) == pytest.approx(-0.2)

    def test_zero_base(self):
        assert relative_change(new=5.0, base=0.0) == 0.0
