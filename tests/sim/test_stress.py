"""Stress tests: the kernel under pathological event patterns.

Every scenario pins an exact *event-count budget* alongside its
behavioural assertion.  The kernel is deterministic, so the number of
events a workload fires is a pure function of the workload — a budget
mismatch means the kernel started firing extra bookkeeping events (or
skipping real ones), which perf work can otherwise introduce silently.

The ``perf``-marked smoke test asserts a deliberately conservative
events/sec floor (the overhauled kernel clears it by an order of
magnitude even on loaded CI runners); the real trajectory lives in
``benchmarks/perf/BENCH_6.json``.
"""

import time

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Hold, Passivate
from repro.sim.resources import FCFSServer, PSServer


class TestEventStorms:
    def test_many_simultaneous_events_fire_in_fifo_order(self):
        sim = Simulator()
        order = []
        count = 5000
        for i in range(count):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(count))
        assert sim.events_fired == count
        assert sim.pending_events == 0

    def test_heavy_cancellation_does_not_leak(self):
        sim = Simulator()
        events = [sim.schedule(float(i % 50) + 1.0, lambda: None) for i in range(10000)]
        for event in events[::2]:
            sim.cancel(event)
        assert sim.pending_events == 5000
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_fired == 5000

    def test_cascading_zero_delay_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 2000:
                sim.schedule(0.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert len(fired) == 2001
        assert sim.now == 0.0
        assert sim.events_fired == 2001


class TestProcessStorms:
    def test_thousand_processes_interleave(self):
        sim = Simulator()
        done = []

        def worker(i):
            for _ in range(3):
                yield Hold(1.0 + (i % 7) * 0.1)
            done.append(i)

        for i in range(1000):
            sim.launch(worker(i))
        sim.run()
        assert len(done) == 1000
        # Budget: one activation + three hold resumes per process.
        assert sim.events_fired == 1000 * 4

    def test_ps_server_with_hundreds_of_concurrent_jobs(self):
        sim = Simulator()
        cpu = PSServer(sim)
        count = 300

        def job(i):
            yield cpu.service(1.0)

        for i in range(count):
            sim.launch(job(i))
        sim.run()
        # All identical demands arriving together finish together at
        # count * demand.
        assert sim.now == pytest.approx(count * 1.0, rel=1e-9)
        assert cpu.completions == count
        # Budget: activation + one *fired* completion + one resume per
        # job; the PS server's cancelled reschedules must never fire.
        assert sim.events_fired == count * 3

    def test_fcfs_long_queue_drains_in_order(self):
        sim = Simulator()
        server = FCFSServer(sim, servers=1)
        finished = []

        def job(i):
            yield server.service(0.01)
            finished.append(i)

        for i in range(2000):
            sim.launch(job(i))
        sim.run()
        assert finished == list(range(2000))
        # Budget: activation + completion + resume per job.
        assert sim.events_fired == 2000 * 3

    def test_passivate_reactivate_waves(self):
        sim = Simulator()
        woken = []
        sleepers = []

        def sleeper(i):
            yield Passivate()
            woken.append(i)

        for i in range(500):
            sleepers.append(sim.launch(sleeper(i)))

        def wake_all():
            for process in sleepers:
                process.reactivate()

        sim.schedule(10.0, wake_all)
        sim.run()
        assert sorted(woken) == list(range(500))
        # Budget: activation + reactivation resume per sleeper, plus the
        # single wake_all event.
        assert sim.events_fired == 500 * 2 + 1


class TestLongRuns:
    def test_clock_precision_over_many_events(self):
        # Accumulating 10^5 small holds should not drift measurably.
        sim = Simulator()

        def ticker():
            for _ in range(100_000):
                yield Hold(0.1)

        sim.launch(ticker())
        sim.run()
        assert sim.now == pytest.approx(10_000.0, rel=1e-9)
        assert sim.events_fired == 100_001


@pytest.mark.perf
class TestThroughputFloor:
    """A conservative events/sec floor for the kernel hot path.

    The floor is ~10x below what the overhauled kernel sustains on a
    developer machine, so it only trips on genuine order-of-magnitude
    regressions (e.g. an accidental O(n) scan per pop), never on CI
    noise.  Trajectory-grade comparison happens in the ``perf`` CI job
    against ``benchmarks/perf/BENCH_6.json``.
    """

    FLOOR_EVENTS_PER_SEC = 25_000.0

    def test_mixed_workload_meets_floor(self):
        sim = Simulator(seed=7)
        cpu = PSServer(sim, name="cpu")
        disk = FCFSServer(sim, name="disk", servers=2)

        def worker(i):
            for _ in range(60):
                yield Hold(0.1 + (i % 13) * 0.01)
                yield cpu.service(0.05 + (i % 7) * 0.01)
                yield disk.service(0.02 + (i % 5) * 0.005)

        for i in range(100):
            sim.launch(worker(i), name=f"w{i}")
        start = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - start
        assert sim.events_fired == 100 * (1 + 60 * 5)
        rate = sim.events_fired / wall
        assert rate > self.FLOOR_EVENTS_PER_SEC, (
            f"kernel throughput collapsed: {rate:,.0f} ev/s "
            f"(floor {self.FLOOR_EVENTS_PER_SEC:,.0f})"
        )
