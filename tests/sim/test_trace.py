"""Unit tests for the tracing utilities."""

import pytest

from repro.model.config import paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.trace import QueryTracer, TraceRecorder


class TestTraceRecorder:
    def test_records_labelled_events(self):
        recorder = TraceRecorder()
        sim = Simulator(trace=recorder)
        sim.schedule(1.0, lambda: None, label="first")
        sim.schedule(2.0, lambda: None, label="second")
        sim.run()
        assert len(recorder) == 2
        assert recorder.lines[0] == (1.0, "first")

    def test_capacity_drops_oldest(self):
        recorder = TraceRecorder(capacity=2)
        for i in range(5):
            recorder(float(i), f"line{i}")
        assert len(recorder) == 2
        assert recorder.lines == [(3.0, "line3"), (4.0, "line4")]
        assert recorder.dropped == 3
        assert recorder.seen == 5

    def test_substring_filter(self):
        recorder = TraceRecorder(filter_substring="disk")
        recorder(1.0, "disk:done")
        recorder(2.0, "cpu:done")
        assert len(recorder) == 1

    def test_matching_and_between(self):
        recorder = TraceRecorder()
        for t, s in ((1.0, "a:x"), (2.0, "b:x"), (3.0, "a:y")):
            recorder(t, s)
        assert recorder.matching("a:") == [(1.0, "a:x"), (3.0, "a:y")]
        assert recorder.between(1.5, 3.0) == [(2.0, "b:x"), (3.0, "a:y")]

    def test_render_and_clear(self):
        recorder = TraceRecorder()
        recorder(1.5, "hello")
        assert "hello" in recorder.render()
        recorder.clear()
        assert len(recorder) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestQueryTracer:
    @pytest.fixture
    def traced_system(self):
        config = paper_defaults(num_sites=3, mpl=4, think_time=50.0)
        system = DistributedDatabase(config, make_policy("LERT"), seed=8)
        tracer = QueryTracer()
        tracer.attach(system)
        # No warmup: the metrics counter resets at warmup end while the
        # tracer keeps everything, so equality only holds from t=0.
        system.run(warmup=0.0, duration=700.0)
        return system, tracer

    def test_records_every_completion(self, traced_system):
        system, tracer = traced_system
        assert len(tracer) == system.metrics.completions

    def test_record_fields_consistent(self, traced_system):
        _, tracer = traced_system
        record = tracer.records[0]
        assert record.completed_at >= record.created_at
        assert record.waiting >= 0 or record.waiting == pytest.approx(0, abs=1e-9)
        assert record.remote == (record.execution_site != record.home_site)

    def test_slowest_sorted(self, traced_system):
        _, tracer = traced_system
        slowest = tracer.slowest(5)
        waits = [r.waiting for r in slowest]
        assert waits == sorted(waits, reverse=True)

    def test_by_site_partition(self, traced_system):
        system, tracer = traced_system
        total = sum(
            len(tracer.by_site(s)) for s in range(system.config.num_sites)
        )
        assert total == len(tracer)

    def test_mean_waiting_by_class(self, traced_system):
        _, tracer = traced_system
        overall = tracer.mean_waiting()
        io = tracer.mean_waiting("io")
        cpu = tracer.mean_waiting("cpu")
        low, high = min(io, cpu), max(io, cpu)
        assert low - 1e-9 <= overall <= high + 1e-9
        assert tracer.mean_waiting("nonexistent") == 0.0

    def test_remote_records_transfer_delays(self, traced_system):
        _, tracer = traced_system
        for record in tracer.remote_records()[:20]:
            assert record.transfer_out_delay > 0
            assert record.return_delay > 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QueryTracer(capacity=0)
