"""Unit tests for the typed event bus and the bounded event log."""

import pytest

from repro.telemetry.bus import EventBus, EventLog
from repro.telemetry.events import (
    QueryCompleted,
    QueryCreated,
    TraceMessage,
    WarmupEnded,
)


def _created(time=1.0, qid=1):
    return QueryCreated(
        time=time, qid=qid, class_name="io", home_site=0, estimated_reads=5.0
    )


class TestEventBus:
    def test_starts_inactive(self):
        bus = EventBus()
        assert not bus.active
        assert bus.subscription_count == 0
        assert not bus.wants(QueryCreated)

    def test_subscribe_makes_active_and_wanted(self):
        bus = EventBus()
        bus.subscribe(QueryCreated, lambda e: None)
        assert bus.active
        assert bus.wants(QueryCreated)
        assert not bus.wants(WarmupEnded)

    def test_dispatch_is_exact_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(QueryCreated, seen.append)
        bus.emit(_created())
        bus.emit(WarmupEnded(time=2.0))
        assert len(seen) == 1
        assert isinstance(seen[0], QueryCreated)

    def test_catch_all_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.emit(_created())
        bus.emit(WarmupEnded(time=2.0))
        assert [e.name for e in seen] == ["QueryCreated", "WarmupEnded"]
        assert bus.wants(QueryCompleted)  # catch-all wants every type

    def test_wants_type_ignores_catch_all(self):
        bus = EventBus()
        bus.subscribe_all(lambda e: None)
        assert bus.wants(TraceMessage)
        assert not bus.wants_type(TraceMessage)
        bus.subscribe(TraceMessage, lambda e: None)
        assert bus.wants_type(TraceMessage)

    def test_subscribers_called_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(QueryCreated, lambda e: order.append("a"))
        bus.subscribe(QueryCreated, lambda e: order.append("b"))
        bus.subscribe_all(lambda e: order.append("all"))
        bus.emit(_created())
        assert order == ["a", "b", "all"]

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        seen = []
        token = bus.subscribe(QueryCreated, seen.append)
        bus.unsubscribe(token)
        bus.unsubscribe(token)  # no-op
        assert not bus.active
        bus.emit(_created())
        assert seen == []

    def test_emitted_counter(self):
        bus = EventBus()
        bus.subscribe_all(lambda e: None)
        bus.emit(_created())
        bus.emit(_created(qid=2))
        assert bus.emitted == 2

    def test_rejects_non_event_types(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(int, lambda e: None)
        with pytest.raises(TypeError):
            bus.subscribe(_created(), lambda e: None)


class TestEventLog:
    def test_collects_in_emission_order(self):
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        bus.emit(_created(qid=1))
        bus.emit(_created(qid=2))
        assert [e.qid for e in log.events] == [1, 2]
        assert len(log) == 2

    def test_capacity_drops_oldest(self):
        bus = EventBus()
        log = EventLog(capacity=2)
        log.attach(bus)
        for qid in range(1, 6):
            bus.emit(_created(qid=qid))
        assert [e.qid for e in log.events] == [4, 5]
        assert log.dropped == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_double_attach_rejected(self):
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        with pytest.raises(ValueError):
            log.attach(bus)

    def test_detach_stops_collection_but_keeps_events(self):
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        bus.emit(_created(qid=1))
        log.detach()
        log.detach()  # idempotent
        bus.emit(_created(qid=2))
        assert [e.qid for e in log.events] == [1]
        assert not bus.active

    def test_clear(self):
        bus = EventBus()
        log = EventLog(capacity=1)
        log.attach(bus)
        bus.emit(_created(qid=1))
        bus.emit(_created(qid=2))
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0
