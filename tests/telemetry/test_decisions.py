"""Unit and end-to-end tests for the allocation decision audit.

The load-bearing property: every stored record's ``cost_chosen`` /
``cost_best`` / ``best_site`` / ``regret`` can be recomputed from the
record's *own* raw fields (true loads, estimates, candidates) with the
public :func:`decision_cost` — the audit never needs live model state to
be checked.
"""

import dataclasses
import math

from repro.extensions.stale_info import StaleInfoDatabase
from repro.model.config import paper_defaults
from repro.policies.registry import make_policy
from repro.runner import RunSpec, run
from repro.telemetry.bus import EventBus
from repro.telemetry.events import AllocationDecided
from repro.telemetry.session import TelemetryConfig
from repro.telemetry.tracing import (
    DecisionAudit,
    decision_cost,
    record_from_event,
)

SPEC = RunSpec(
    warmup=50.0,
    duration=300.0,
    seed=11,
    telemetry=TelemetryConfig(decisions=True),
)


def decided(**overrides) -> AllocationDecided:
    base = dict(
        time=10.0,
        qid=7,
        class_name="io",
        home_site=1,
        chosen_site=1,
        staleness=0.0,
        seen_loads="2,0,3",
        true_loads="2,1,3",
        candidates="0,1,2",
        est_service=4.0,
        est_transfer=0.25,
        est_return=0.5,
        attempt=0,
    )
    base.update(overrides)
    return AllocationDecided(**base)


class TestDecisionCost:
    def test_local_is_queue_scaled_service(self):
        assert decision_cost(3, 4.0, 0.25, 0.5, remote=False) == 16.0

    def test_remote_adds_both_hops(self):
        assert decision_cost(3, 4.0, 0.25, 0.5, remote=True) == 16.75

    def test_empty_queue_still_counts_self(self):
        assert decision_cost(0, 4.0, 0.0, 0.0, remote=False) == 4.0


class TestRecordFromEvent:
    def test_costs_match_brute_force(self):
        record = record_from_event(decided())
        # True loads (2, 1, 3), home 1: site 0 → 3*4+0.75, 1 → 2*4,
        # 2 → 4*4+0.75.  Best is home site 1 at cost 8.
        assert record.cost_chosen == 8.0
        assert record.best_site == 1
        assert record.cost_best == 8.0
        assert record.regret == 0.0
        assert record.optimal

    def test_regret_of_a_suboptimal_choice(self):
        record = record_from_event(decided(chosen_site=2))
        assert record.cost_chosen == 4 * 4.0 + 0.75
        assert record.cost_best == 8.0
        assert record.regret == record.cost_chosen - record.cost_best
        assert not record.optimal

    def test_ties_break_toward_lowest_site(self):
        event = decided(true_loads="2,2,2", est_transfer=0.0, est_return=0.0)
        record = record_from_event(event)
        assert record.best_site == 0

    def test_tie_break_is_order_independent(self):
        event = decided(
            true_loads="2,2,2",
            est_transfer=0.0,
            est_return=0.0,
            candidates="2,1,0",
        )
        assert record_from_event(event).best_site == 0

    def test_raw_fields_are_decoded(self):
        record = record_from_event(decided())
        assert record.seen_loads == (2, 0, 3)
        assert record.true_loads == (2, 1, 3)
        assert record.candidates == (0, 1, 2)


class TestAuditCollection:
    def test_incremental_reads_see_later_events(self):
        bus = EventBus()
        audit = DecisionAudit(bus)
        bus.emit(decided(qid=1))
        assert len(audit.records) == 1
        bus.emit(decided(qid=2))
        assert [r.qid for r in audit.records] == [1, 2]

    def test_close_stops_collection_and_is_idempotent(self):
        bus = EventBus()
        audit = DecisionAudit(bus)
        bus.emit(decided(qid=1))
        audit.close()
        audit.close()
        bus.emit(decided(qid=2))
        assert [r.qid for r in audit.records] == [1]

    def test_empty_summary_is_all_zero(self):
        audit = DecisionAudit(EventBus())
        summary = audit.summary()
        assert summary.count == 0
        assert summary.optimal_fraction == 0.0


class TestRealRuns:
    def test_records_recompute_exactly(self, tiny_config):
        report = run(tiny_config, "BNQRD", SPEC)
        records = report.decisions
        assert records, "a real run must audit decisions"
        for record in records:
            cost_chosen = decision_cost(
                record.true_loads[record.chosen_site],
                record.est_service,
                record.est_transfer,
                record.est_return,
                remote=record.chosen_site != record.home_site,
            )
            assert record.cost_chosen == cost_chosen
            costs = {
                site: decision_cost(
                    record.true_loads[site],
                    record.est_service,
                    record.est_transfer,
                    record.est_return,
                    remote=site != record.home_site,
                )
                for site in record.candidates
            }
            best_site = min(record.candidates, key=lambda s: (costs[s], s))
            assert record.best_site == best_site
            assert record.cost_best == costs[best_site]
            assert record.regret == record.cost_chosen - record.cost_best
            assert record.regret >= 0.0

    def test_summary_matches_brute_force_aggregation(self, tiny_config):
        report = run(tiny_config, "BNQRD", SPEC)
        records = report.decisions
        summary = report.results.decisions
        assert summary is not None
        assert summary.count == len(records)
        assert summary.total_regret == math.fsum(r.regret for r in records)
        assert summary.mean_regret == summary.total_regret / summary.count
        assert summary.max_regret == max(r.regret for r in records)
        assert summary.mean_staleness == (
            math.fsum(r.staleness for r in records) / summary.count
        )
        assert summary.max_staleness == max(r.staleness for r in records)
        assert summary.optimal_fraction == (
            sum(1 for r in records if r.optimal) / summary.count
        )

    def test_audit_is_deterministic(self, tiny_config):
        first = run(tiny_config, "BNQRD", SPEC)
        second = run(tiny_config, "BNQRD", SPEC)
        assert first.decisions == second.decisions

    def test_audit_does_not_perturb_results(self, tiny_config):
        bare = run(
            tiny_config, "BNQRD", dataclasses.replace(SPEC, telemetry=None)
        )
        audited = run(tiny_config, "BNQRD", SPEC)
        assert (
            dataclasses.replace(audited.results, telemetry=None, decisions=None)
            == bare.results
        )

    def test_oracle_decisions_have_zero_staleness(self, tiny_config):
        report = run(tiny_config, "BNQRD", SPEC)
        assert all(r.staleness == 0.0 for r in report.decisions)
        assert all(r.seen_loads == r.true_loads for r in report.decisions)


class TestStaleness:
    def test_stale_views_surface_age_and_divergence(self):
        system = StaleInfoDatabase(
            paper_defaults(), make_policy("BNQRD"), seed=11, refresh_interval=50.0
        )
        audit = DecisionAudit(system.sim.bus)
        system.run(warmup=100.0, duration=500.0)
        records = audit.records
        assert records
        assert max(r.staleness for r in records) > 0.0
        assert all(r.staleness <= 50.0 for r in records)
        # Between refreshes the snapshot and the truth drift apart.
        assert any(r.seen_loads != r.true_loads for r in records)
