"""Determinism and non-interference regression tests for telemetry.

Three contracts:

* **byte-identical streams** — two runs with the same seed export the
  same JSONL event log and the same CSV timeline, byte for byte;
* **zero interference** — enabling telemetry does not change the
  simulation's results (exact equality, modulo the summary field);
* **cache invariance** — telemetry never leaks into the parallel
  backend's tasks or the result cache: cached results are telemetry-free
  and telemetry options cannot change cache keys.
"""

import dataclasses

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    ReplicationTask,
    RunProgress,
    progress_reporting,
    replication_tasks,
    run_tasks,
)
from repro.experiments.runconfig import RunSettings
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.runner import RunSpec, execute, run
from repro.telemetry.exporters import events_to_jsonl, timeline_to_csv
from repro.telemetry.session import TelemetryConfig

SPEC = RunSpec(
    warmup=50.0,
    duration=200.0,
    seed=11,
    telemetry=TelemetryConfig(sample_interval=25.0),
)
SETTINGS = RunSettings(warmup=50.0, duration=200.0, replications=2, base_seed=11)


class TestByteIdenticalStreams:
    def test_same_seed_same_bytes(self, tiny_config):
        first = run(tiny_config, "LERT", SPEC)
        second = run(tiny_config, "LERT", SPEC)
        assert events_to_jsonl(first.events) == events_to_jsonl(second.events)
        assert timeline_to_csv(first.timeline) == timeline_to_csv(second.timeline)
        assert first.results == second.results

    def test_different_seed_different_stream(self, tiny_config):
        first = run(tiny_config, "LERT", SPEC)
        other = run(tiny_config, "LERT", dataclasses.replace(SPEC, seed=12))
        assert events_to_jsonl(first.events) != events_to_jsonl(other.events)


class TestZeroInterference:
    def test_results_identical_with_and_without_telemetry(self, tiny_config):
        bare = run(tiny_config, "LERT", dataclasses.replace(SPEC, telemetry=None))
        full = run(tiny_config, "LERT", SPEC)
        assert bare.results.telemetry is None
        assert full.results.telemetry is not None
        assert dataclasses.replace(full.results, telemetry=None) == bare.results
        assert bare.events == ()
        assert bare.timeline == ()

    def test_execute_matches_direct_run(self, tiny_config):
        direct = DistributedDatabase(tiny_config, make_policy("BNQ"), seed=3)
        expected = direct.run(warmup=50.0, duration=200.0)
        system = DistributedDatabase(tiny_config, make_policy("BNQ"), seed=3)
        report = execute(system, RunSpec(warmup=50.0, duration=200.0, seed=3))
        assert report.results == expected


class TestCacheInvariance:
    def test_cached_results_are_telemetry_free(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = replication_tasks(tiny_config, "LERT", SETTINGS)
        fresh = run_tasks(tasks, cache=cache)
        again = run_tasks(tasks, cache=cache)
        assert fresh == again
        for result in again:
            assert result.telemetry is None

    def test_task_keys_carry_no_telemetry_dimension(self, tiny_config):
        # ReplicationTask is the *complete* cache identity; RunSpec's
        # telemetry options have nowhere to enter it.
        task = ReplicationTask(tiny_config, "LERT", 11, 50.0, 200.0)
        assert "telemetry" not in ReplicationTask.__dataclass_fields__
        assert task.key() == ReplicationTask(tiny_config, "LERT", 11, 50.0, 200.0).key()

    def test_cached_and_telemetry_runs_agree(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = replication_tasks(
            tiny_config,
            "LERT",
            RunSettings(warmup=50.0, duration=200.0, replications=1, base_seed=11),
        )
        (cached,) = run_tasks(tasks, cache=cache)
        telemetered = run(tiny_config, "LERT", SPEC).results
        assert dataclasses.replace(telemetered, telemetry=None) == cached


class TestParallelEquivalence:
    def test_jobs_do_not_change_results(self, tiny_config):
        tasks = replication_tasks(tiny_config, "LERT", SETTINGS)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert serial == parallel


class TestProgressReporting:
    def test_callback_sees_every_task(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = replication_tasks(tiny_config, "LERT", SETTINGS)
        ticks = []
        run_tasks(tasks, cache=cache, progress=ticks.append)
        assert len(ticks) >= 1
        assert all(isinstance(t, RunProgress) for t in ticks)
        assert ticks[-1].completed == len(tasks)
        assert ticks[-1].total == len(tasks)
        assert ticks[-1].cached == 0
        # Second pass: everything resolves from the cache.
        ticks.clear()
        run_tasks(tasks, cache=cache, progress=ticks.append)
        assert ticks[-1].completed == len(tasks)
        assert ticks[-1].cached == len(tasks)

    def test_ambient_callback_via_context_manager(self, tiny_config):
        tasks = replication_tasks(
            tiny_config,
            "LOCAL",
            RunSettings(warmup=10.0, duration=50.0, replications=1, base_seed=1),
        )
        ambient = []
        with progress_reporting(ambient.append):
            run_tasks(tasks)
        assert ambient and ambient[-1].completed == len(tasks)
        # Restored on exit: no further reports.
        run_tasks(tasks)
        assert len(ambient) == len(tasks)

    def test_progress_does_not_change_results(self, tiny_config):
        tasks = replication_tasks(tiny_config, "LERT", SETTINGS)
        quiet = run_tasks(tasks)
        noisy = run_tasks(tasks, progress=lambda tick: None)
        assert quiet == noisy
