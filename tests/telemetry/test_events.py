"""Round-trip and schema tests for the typed event taxonomy."""

import dataclasses

import pytest

from repro.telemetry.events import (
    EVENT_REGISTRY,
    EVENT_TYPES,
    AllocationDecided,
    LoadBoardUpdated,
    MessageDropped,
    QueryAborted,
    QueryAllocated,
    QueryCompleted,
    QueryCreated,
    QueryLost,
    QueryRetried,
    QueryShed,
    QueryTransferred,
    RunEnded,
    RunStarted,
    ServiceFinished,
    ServiceStarted,
    SiteCrashed,
    SiteRecovered,
    TraceMessage,
    WarmupEnded,
    event_from_dict,
    event_to_dict,
)

#: One concrete instance of every event type (all fields non-default-ish).
SAMPLES = (
    RunStarted(time=0.0, policy="LERT", seed=7, warmup=100.0, duration=400.0),
    WarmupEnded(time=100.0),
    RunEnded(time=500.0, completions=63),
    QueryCreated(time=1.5, qid=3, class_name="io", home_site=2, estimated_reads=4.25),
    QueryAllocated(time=1.5, qid=3, class_name="io", home_site=2, execution_site=0),
    QueryTransferred(
        time=1.5, qid=3, source=2, destination=0, kind="query", transfer_time=0.125
    ),
    ServiceStarted(time=1.75, qid=3, site=0, reads=4),
    QueryCompleted(
        time=9.0,
        qid=3,
        class_name="io",
        home_site=2,
        execution_site=0,
        remote=True,
        created_at=1.5,
        allocated_at=1.5,
        started_at=1.75,
        finished_at=8.5,
        service_time=6.75,
        waiting_time=7.5,
        migrations=0,
    ),
    LoadBoardUpdated(time=1.5, site=0, io_queries=2, cpu_queries=1, change=1),
    TraceMessage(time=0.5, label="terminal.0.0"),
    SiteCrashed(time=120.0, site=1),
    SiteRecovered(time=160.0, site=1),
    QueryAborted(time=120.0, qid=3, site=1, attempt=1),
    QueryRetried(time=122.0, qid=3, attempt=2, backoff=2.0),
    QueryLost(time=190.0, qid=4, attempts=6),
    MessageDropped(time=130.0, source=2, destination=0, kind="result", qid=5),
    QueryShed(time=140.0, site=3, serial=212, pending=64),
    AllocationDecided(
        time=1.5,
        qid=3,
        class_name="io",
        home_site=2,
        chosen_site=0,
        staleness=12.5,
        seen_loads="2,0,1",
        true_loads="3,0,1",
        candidates="0,1,2",
        est_service=6.25,
        est_transfer=0.125,
        est_return=0.5,
        attempt=1,
    ),
    ServiceFinished(time=8.5, qid=3, site=0, service_time=6.75),
)


class TestTaxonomy:
    def test_every_type_has_a_sample(self):
        assert {type(s) for s in SAMPLES} == set(EVENT_TYPES)

    def test_registry_maps_names(self):
        for cls in EVENT_TYPES:
            assert EVENT_REGISTRY[cls.__name__] is cls

    def test_events_are_frozen(self):
        for sample in SAMPLES:
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(sample, "time", -1.0)

    def test_name_property(self):
        assert WarmupEnded(time=1.0).name == "WarmupEnded"


class TestRoundTrip:
    @pytest.mark.parametrize("sample", SAMPLES, ids=lambda s: s.name)
    def test_dict_round_trip_is_exact(self, sample):
        restored = event_from_dict(event_to_dict(sample))
        assert restored == sample
        assert type(restored) is type(sample)

    def test_to_dict_carries_type_tag(self):
        payload = event_to_dict(WarmupEnded(time=2.0))
        assert payload == {"event": "WarmupEnded", "time": 2.0}

    def test_coerces_json_widened_ints(self):
        # JSON can't distinguish 1 from 1.0; round-trips restore exact types.
        payload = event_to_dict(ServiceStarted(time=1.0, qid=3, site=0, reads=4))
        payload["reads"] = 4.0
        payload["time"] = 1
        restored = event_from_dict(payload)
        assert restored == ServiceStarted(time=1.0, qid=3, site=0, reads=4)
        assert isinstance(restored.reads, int)
        assert isinstance(restored.time, float)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry event tag"):
            event_from_dict({"event": "Nope", "time": 1.0})
        with pytest.raises(ValueError, match="unknown telemetry event tag"):
            event_from_dict({"time": 1.0})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            event_from_dict({"event": "RunEnded", "time": 1.0})
