"""Exporter round-trip and format-validation tests."""

import json

import pytest

from repro.telemetry.events import QueryCreated, RunEnded, WarmupEnded
from repro.telemetry.exporters import (
    TIMELINE_FORMAT_VERSION,
    events_from_jsonl,
    events_to_jsonl,
    read_events_jsonl,
    read_timeline_csv,
    read_timeline_json,
    timeline_from_csv,
    timeline_from_json,
    timeline_to_csv,
    timeline_to_json,
    write_events_jsonl,
    write_timeline_csv,
    write_timeline_json,
)
from repro.telemetry.sampler import TIMELINE_FIELDS, TimelineSample

EVENTS = (
    QueryCreated(time=1.5, qid=1, class_name="io", home_site=0, estimated_reads=4.25),
    WarmupEnded(time=50.0),
    RunEnded(time=250.0, completions=9),
)

SAMPLES = (
    TimelineSample(
        time=50.0,
        site=0,
        cpu_queue=2,
        disk_queue=3,
        cpu_busy=0.0,
        disk_busy=0.0,
        cpu_utilization=0.0,
        disk_utilization=0.0,
        load_io=1,
        load_cpu=0,
        staleness=0.0,
    ),
    TimelineSample(
        time=100.0,
        site=0,
        cpu_queue=1,
        disk_queue=0,
        # Deliberately awkward floats: repr round-trips them bit-for-bit.
        cpu_busy=1.0 / 3.0,
        disk_busy=0.1 + 0.2,
        cpu_utilization=(1.0 / 3.0) / 50.0,
        disk_utilization=(0.1 + 0.2) / 100.0,
        load_io=0,
        load_cpu=1,
        staleness=12.75,
    ),
)


class TestEventsJsonl:
    def test_round_trip_is_exact(self):
        assert events_from_jsonl(events_to_jsonl(EVENTS)) == EVENTS

    def test_empty_stream_is_empty_string(self):
        assert events_to_jsonl(()) == ""
        assert events_from_jsonl("") == ()

    def test_canonical_lines(self):
        text = events_to_jsonl(EVENTS)
        lines = text.splitlines()
        assert len(lines) == 3
        assert text.endswith("\n")
        for line in lines:
            payload = json.loads(line)
            # Canonical form: sorted keys, no spaces.
            assert line == json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )

    def test_blank_lines_ignored(self):
        text = events_to_jsonl(EVENTS)
        padded = "\n" + text.replace("\n", "\n\n")
        assert events_from_jsonl(padded) == EVENTS

    def test_invalid_json_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            events_from_jsonl('{"event":"WarmupEnded","time":1.0}\n{oops\n')

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="expected a JSON object"):
            events_from_jsonl("[1,2]\n")

    def test_file_round_trip(self, tmp_path):
        path = write_events_jsonl(EVENTS, tmp_path / "events.jsonl")
        assert read_events_jsonl(path) == EVENTS


class TestTimelineCsv:
    def test_round_trip_is_exact(self):
        assert timeline_from_csv(timeline_to_csv(SAMPLES)) == SAMPLES

    def test_header_is_field_order(self):
        first_line = timeline_to_csv(SAMPLES).splitlines()[0]
        assert first_line == ",".join(TIMELINE_FIELDS)

    def test_ints_stay_bare(self):
        row = timeline_to_csv(SAMPLES[:1]).splitlines()[1].split(",")
        site_cell = row[TIMELINE_FIELDS.index("site")]
        assert site_cell == "0"  # not "0.0"

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError, match="missing header"):
            timeline_from_csv("")

    def test_wrong_header_rejected(self):
        with pytest.raises(ValueError, match="unexpected timeline header"):
            timeline_from_csv("a,b,c\n")

    def test_short_row_rejected(self):
        text = ",".join(TIMELINE_FIELDS) + "\n1.0,2\n"
        with pytest.raises(ValueError, match="cells"):
            timeline_from_csv(text)

    def test_file_round_trip(self, tmp_path):
        path = write_timeline_csv(SAMPLES, tmp_path / "timeline.csv")
        assert read_timeline_csv(path) == SAMPLES


class TestTimelineJson:
    def test_round_trip_is_exact(self):
        assert timeline_from_json(timeline_to_json(SAMPLES)) == SAMPLES

    def test_envelope_carries_version_and_fields(self):
        data = json.loads(timeline_to_json(SAMPLES))
        assert data["format_version"] == TIMELINE_FORMAT_VERSION
        assert data["fields"] == list(TIMELINE_FIELDS)
        assert len(data["samples"]) == len(SAMPLES)

    def test_version_mismatch_rejected(self):
        data = json.loads(timeline_to_json(SAMPLES))
        data["format_version"] = 999
        with pytest.raises(ValueError, match="format_version"):
            timeline_from_json(json.dumps(data))

    def test_malformed_documents_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            timeline_from_json("[1]")
        with pytest.raises(ValueError, match="samples"):
            timeline_from_json('{"format_version":1}')

    def test_file_round_trip(self, tmp_path):
        path = write_timeline_json(SAMPLES, tmp_path / "timeline.json")
        assert read_timeline_json(path) == SAMPLES

    def test_csv_and_json_agree(self):
        via_csv = timeline_from_csv(timeline_to_csv(SAMPLES))
        via_json = timeline_from_json(timeline_to_json(SAMPLES))
        assert via_csv == via_json
