"""Tests for the kernel self-profiler (`repro.telemetry.profile`).

The cardinal rule: profiling must observe, never perturb — a profiled
run's `SystemResults` are exactly the unprofiled run's.
"""

import pytest

from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.telemetry.profile import KernelProfiler, PhaseReport, main


def build(tiny_config, policy="BNQRD", seed=11):
    return DistributedDatabase(tiny_config, make_policy(policy), seed=seed)


class TestNonPerturbation:
    def test_profiled_results_equal_unprofiled(self, tiny_config):
        plain = build(tiny_config).run(warmup=50.0, duration=300.0)
        system = build(tiny_config)
        with KernelProfiler(system) as profiler:
            profiled = system.run(warmup=50.0, duration=300.0)
        assert profiled == plain
        assert profiler.report().total > 0.0

    def test_uninstall_restores_the_system(self, tiny_config):
        system = build(tiny_config)
        queue = system.sim._queue
        profiler = KernelProfiler(system)
        profiler.install()
        assert system.sim._queue is not queue
        profiler.uninstall()
        assert system.sim._queue is queue
        assert "select" not in system.policy.__dict__
        assert "emit" not in system.sim.bus.__dict__
        # The restored system still runs.
        system.run(warmup=10.0, duration=50.0)


class TestPhaseAttribution:
    def test_phases_cover_the_total(self, tiny_config):
        system = build(tiny_config)
        with KernelProfiler(system) as profiler:
            system.run(warmup=50.0, duration=300.0)
        report = profiler.report()
        attributed = sum(seconds for _, seconds in report.phases())
        assert attributed == pytest.approx(report.total, rel=1e-9)
        assert report.queue_calls > 0
        assert report.policy_calls > 0
        assert report.dispatch >= 0.0

    def test_telemetry_phase_is_zero_when_disabled(self, tiny_config):
        system = build(tiny_config)
        with KernelProfiler(system) as profiler:
            system.run(warmup=50.0, duration=300.0)
        report = profiler.report()
        assert report.emit_calls == 0
        assert report.telemetry == 0.0

    def test_report_while_installed_is_an_error(self, tiny_config):
        system = build(tiny_config)
        profiler = KernelProfiler(system)
        profiler.install()
        try:
            with pytest.raises(ValueError):
                profiler.report()
        finally:
            profiler.uninstall()

    def test_format_lists_every_phase(self, tiny_config):
        system = build(tiny_config)
        with KernelProfiler(system) as profiler:
            system.run(warmup=10.0, duration=50.0)
        text = profiler.report().format()
        for phase in ("queue_ops", "policy", "telemetry", "dispatch"):
            assert phase in text

    def test_phase_report_order_is_fixed(self):
        report = PhaseReport(
            total=1.0,
            queue_ops=0.2,
            policy=0.1,
            telemetry=0.0,
            dispatch=0.7,
            queue_calls=10,
            policy_calls=5,
            emit_calls=0,
        )
        assert [name for name, _ in report.phases()] == [
            "queue_ops",
            "policy",
            "telemetry",
            "dispatch",
        ]


class TestCli:
    def test_smoke(self, capsys):
        exit_code = main(
            ["--policy", "BNQRD", "--seed", "3", "--warmup", "20",
             "--duration", "100"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "queue_ops" in out
        assert "dispatch" in out

    def test_with_tracing_counts_emits(self, capsys):
        exit_code = main(
            ["--warmup", "20", "--duration", "100", "--spans", "--decisions"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
