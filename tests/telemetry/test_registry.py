"""Unit tests for the metrics registry and its monitor adapters."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.monitor import Tally, TimeWeighted
from repro.telemetry.registry import (
    CounterMetric,
    MetricsRegistry,
    merge_snapshots,
)


class TestCounter:
    def test_create_or_get(self):
        registry = MetricsRegistry()
        counter = registry.counter("events.QueryCompleted")
        counter.inc()
        counter.inc(3)
        assert registry.counter("events.QueryCompleted") is counter
        assert counter.count == 4
        assert counter.value() == 4.0
        assert counter.stats() == {"count": 4.0}

    def test_negative_increment_rejected(self):
        counter = CounterMetric("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.bind_histogram("x", Tally("x"))
        with pytest.raises(ValueError, match="not a counter"):
            registry.counter("x")


class TestAdapters:
    def test_gauge_reads_time_weighted(self):
        sim = Simulator()
        monitor = TimeWeighted(sim, "queue")
        registry = MetricsRegistry()
        gauge = registry.bind_gauge("site.0.cpu.queue", monitor)
        monitor.set(2.0)
        stats = gauge.stats()
        assert stats["value"] == 2.0
        assert stats["max"] == 2.0
        assert gauge.value() == 2.0

    def test_histogram_reads_tally(self):
        tally = Tally("waiting")
        registry = MetricsRegistry()
        histogram = registry.bind_histogram("queries.waiting", tally)
        assert histogram.stats() == {"count": 0.0, "mean": 0.0, "stdev": 0.0}
        tally.record(2.0)
        tally.record(4.0)
        stats = histogram.stats()
        assert stats["count"] == 2.0
        assert stats["mean"] == 3.0
        assert stats["min"] == 2.0
        assert stats["max"] == 4.0

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.bind_histogram("x", Tally("x"))
        with pytest.raises(ValueError, match="already registered"):
            registry.bind_histogram("x", Tally("x"))

    def test_empty_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("")


class TestNamespace:
    def test_prefixing_and_nesting(self):
        registry = MetricsRegistry()
        site = registry.scoped("site.2")
        disk = site.scoped("disk.1")
        disk.bind_histogram("seek", Tally())
        site.counter("visits").inc()
        assert "site.2.disk.1.seek" in registry
        assert "site.2.visits" in registry
        assert registry.get("site.2.visits").value() == 1.0

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().scoped("")


class TestSnapshot:
    def test_snapshot_is_flat_and_sorted(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.counter("events.RunEnded").inc()
        registry.bind_gauge("site.0.cpu.busy", TimeWeighted(sim))
        registry.bind_histogram("queries.waiting", Tally())
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["events.RunEnded"] == 1.0
        assert "site.0.cpu.busy.avg" in snapshot
        assert "queries.waiting.count" in snapshot

    def test_names_sorted_and_iteration(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert [m.name for m in registry] == ["a", "b"]
        assert len(registry) == 2

    def test_summary_pairs_match_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        assert registry.summary_pairs() == (("a", 2.0),)

    def test_merge_snapshots(self):
        merged = merge_snapshots({"a": 1.0, "b": 2.0}, {"b": 3.0, "c": 4.0})
        assert merged == {"a": 1.0, "b": 3.0, "c": 4.0}
        assert list(merged) == ["a", "b", "c"]
        assert merge_snapshots(None, {"x": 1.0}) == {"x": 1.0}
