"""Tests for the top-level run facade (RunSpec / RunReport / execute / run)."""

import math

import pytest

import repro
from repro.experiments.runconfig import RunSettings
from repro.policies.registry import make_policy
from repro.runner import RunReport, RunSpec, run
from repro.telemetry.exporters import read_events_jsonl, read_timeline_csv, read_timeline_json
from repro.telemetry.session import TelemetryConfig

SPEC = RunSpec(
    warmup=50.0,
    duration=200.0,
    seed=11,
    telemetry=TelemetryConfig(sample_interval=50.0),
)


class TestRunSpec:
    def test_defaults_match_paper_settings(self):
        spec = RunSpec()
        assert spec.warmup == 3000.0
        assert spec.duration == 15000.0
        assert spec.seed == 0
        assert spec.telemetry is None

    @pytest.mark.parametrize("warmup", [-1.0, math.inf, math.nan])
    def test_bad_warmup_rejected(self, warmup):
        with pytest.raises(ValueError):
            RunSpec(warmup=warmup)

    @pytest.mark.parametrize("duration", [0.0, -5.0, math.inf, math.nan])
    def test_bad_duration_rejected(self, duration):
        with pytest.raises(ValueError):
            RunSpec(duration=duration)

    def test_from_settings_uses_replication_seed(self):
        settings = RunSettings(
            warmup=10.0, duration=20.0, replications=3, base_seed=100
        )
        spec = RunSpec.from_settings(settings, replication=2)
        assert spec.warmup == 10.0
        assert spec.duration == 20.0
        assert spec.seed == settings.seed_for(2)
        assert spec.telemetry is None
        with_telemetry = RunSpec.from_settings(
            settings, telemetry=TelemetryConfig()
        )
        assert with_telemetry.telemetry == TelemetryConfig()


class TestRun:
    def test_policy_by_name_and_instance_agree(self, tiny_config):
        by_name = run(tiny_config, "BNQRD", SPEC)
        by_instance = run(tiny_config, make_policy("BNQRD"), SPEC)
        assert by_name.results == by_instance.results

    def test_without_telemetry_report_is_bare(self, tiny_config):
        report = run(tiny_config, "LOCAL", RunSpec(warmup=10.0, duration=50.0))
        assert report.events == ()
        assert report.timeline == ()
        assert report.summary == {}
        assert report.results.telemetry is None

    def test_with_telemetry_report_is_full(self, tiny_config):
        report = run(tiny_config, "LERT", SPEC)
        assert len(report.events) > 0
        assert len(report.timeline) > 0
        assert report.summary
        assert report.summary == dict(report.results.telemetry)

    def test_top_level_reexports(self):
        assert repro.run is run
        assert repro.RunSpec is RunSpec
        assert repro.RunReport is RunReport
        assert repro.TelemetryConfig is TelemetryConfig
        for name in ("run", "execute", "RunSpec", "RunReport",
                     "TelemetryConfig", "TelemetrySession", "EventBus"):
            assert name in repro.__all__


class TestResultsSerialization:
    def test_telemetry_field_round_trips(self, tiny_config):
        from repro.model.serialization import results_from_dict, results_to_dict

        report = run(tiny_config, "LERT", SPEC)
        restored = results_from_dict(results_to_dict(report.results))
        assert restored == report.results
        assert restored.telemetry == report.results.telemetry

    def test_pre_telemetry_records_still_load(self, tiny_config):
        from repro.model.serialization import results_from_dict, results_to_dict

        bare = run(
            tiny_config, "LOCAL", RunSpec(warmup=10.0, duration=50.0)
        ).results
        payload = results_to_dict(bare)
        # Entries written before the telemetry field existed have no key.
        payload.pop("telemetry")
        restored = results_from_dict(payload)
        assert restored == bare
        assert restored.telemetry is None


class TestRunReportExports:
    def test_write_events(self, tiny_config, tmp_path):
        report = run(tiny_config, "LERT", SPEC)
        path = report.write_events(tmp_path / "events.jsonl")
        assert read_events_jsonl(path) == report.events

    def test_write_timeline_csv_and_json(self, tiny_config, tmp_path):
        report = run(tiny_config, "LERT", SPEC)
        csv_path = report.write_timeline(tmp_path / "timeline.csv")
        json_path = report.write_timeline(tmp_path / "timeline.json", fmt="json")
        assert read_timeline_csv(csv_path) == report.timeline
        assert read_timeline_json(json_path) == report.timeline

    def test_unknown_timeline_format_rejected(self, tiny_config, tmp_path):
        report = run(tiny_config, "LOCAL", RunSpec(warmup=10.0, duration=50.0))
        with pytest.raises(ValueError, match="unknown timeline format"):
            report.write_timeline(tmp_path / "timeline.xml", fmt="xml")
