"""Timeline-sampler cadence, exactness, and non-interference tests."""

import dataclasses
import math

import pytest

from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.telemetry.sampler import (
    TIMELINE_FIELDS,
    TimelineSample,
    TimelineSampler,
    sample_from_dict,
    sample_to_dict,
)
from repro.telemetry.session import TelemetryConfig, TelemetrySession

WARMUP = 50.0
DURATION = 200.0


def sampled_run(config, interval, *, warmup=WARMUP, duration=DURATION, seed=11):
    """Run a small system with a timeline sampler; return (results, sampler)."""
    system = DistributedDatabase(config, make_policy("LERT"), seed=seed)
    session = TelemetrySession(
        system, TelemetryConfig(events=False, sample_interval=interval)
    )
    results = system.run(warmup=warmup, duration=duration)
    session.close()
    assert session.sampler is not None
    return results, session.sampler, system


class TestCadence:
    def test_even_cadence_covers_warmup_to_end(self, tiny_config):
        _, sampler, _ = sampled_run(tiny_config, interval=50.0)
        # 50 divides 200: samples at 50, 100, 150, 200, 250.
        assert sampler.sample_times == (50.0, 100.0, 150.0, 200.0, 250.0)
        # One sample per site per instant.
        assert len(sampler.samples) == 5 * tiny_config.num_sites

    def test_baseline_sample_at_warmup_boundary_is_zeroed(self, tiny_config):
        _, sampler, _ = sampled_run(tiny_config, interval=50.0)
        baseline = [s for s in sampler.samples if s.time == WARMUP]
        assert len(baseline) == tiny_config.num_sites
        for sample in baseline:
            # Post-reset busy integrals and a zero-length interval.
            assert sample.cpu_busy == 0.0
            assert sample.disk_busy == 0.0
            assert sample.cpu_utilization == 0.0
            assert sample.disk_utilization == 0.0
            assert sample.staleness == 0.0

    def test_uneven_interval_still_ends_exactly_at_end(self, tiny_config):
        # 80 does not divide 200; the last interval is truncated.
        _, sampler, _ = sampled_run(tiny_config, interval=80.0)
        assert sampler.sample_times == (50.0, 130.0, 210.0, 250.0)

    def test_interval_longer_than_duration(self, tiny_config):
        # A single (truncated) interval: baseline + final sample only.
        _, sampler, _ = sampled_run(tiny_config, interval=10_000.0)
        assert sampler.sample_times == (50.0, 250.0)

    def test_no_drift_for_many_ticks(self, tiny_config):
        _, sampler, _ = sampled_run(tiny_config, interval=7.0)
        times = sampler.sample_times
        assert times[0] == 50.0
        assert times[-1] == 250.0
        for tick, time in enumerate(times[:-1]):
            assert time == 50.0 + tick * 7.0  # exact, not approximate

    def test_zero_warmup_baseline_at_time_zero(self, tiny_config):
        _, sampler, _ = sampled_run(tiny_config, interval=100.0, warmup=0.0)
        assert sampler.sample_times[0] == 0.0
        assert sampler.sample_times[-1] == DURATION


class TestExactness:
    def test_sampled_utilizations_integrate_to_results(self, tiny_config):
        results, sampler, system = sampled_run(tiny_config, interval=30.0)
        per_site_cpu = []
        per_site_disk = []
        for index, site in enumerate(system.sites):
            cpu, disk = sampler.integrated_utilization(index)
            assert cpu == pytest.approx(site.cpu_utilization, rel=1e-9, abs=1e-12)
            assert disk == pytest.approx(site.disk_utilization, rel=1e-9, abs=1e-12)
            per_site_cpu.append(cpu)
            per_site_disk.append(disk)
        # And therefore to the run's reported (site-averaged) figures.
        mean_cpu = math.fsum(per_site_cpu) / len(per_site_cpu)
        mean_disk = math.fsum(per_site_disk) / len(per_site_disk)
        assert mean_cpu == pytest.approx(results.cpu_utilization, rel=1e-2)
        assert mean_disk == pytest.approx(results.disk_utilization, rel=1e-2)

    def test_busy_integral_telescopes(self, tiny_config):
        _, sampler, _ = sampled_run(tiny_config, interval=40.0)
        rows = [s for s in sampler.samples if s.site == 0]
        for prev, cur in zip(rows, rows[1:]):
            dt = cur.time - prev.time
            assert cur.cpu_utilization * dt == pytest.approx(
                cur.cpu_busy - prev.cpu_busy, rel=1e-12, abs=1e-12
            )

    def test_sampling_does_not_perturb_results(self, tiny_config):
        plain = DistributedDatabase(tiny_config, make_policy("LERT"), seed=11)
        baseline = plain.run(warmup=WARMUP, duration=DURATION)
        sampled_results, _, _ = sampled_run(tiny_config, interval=13.0)
        assert dataclasses.replace(sampled_results, telemetry=None) == baseline


class TestValidation:
    def test_interval_must_be_positive_finite(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ValueError):
                TimelineSampler(system, bad)

    def test_start_twice_rejected(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        sampler = TimelineSampler(system, 10.0)
        sampler.start(end_time=100.0)
        with pytest.raises(ValueError, match="already started"):
            sampler.start(end_time=100.0)

    def test_end_before_now_rejected(self, tiny_config):
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=1)
        system.run(warmup=0.0, duration=50.0)
        sampler = TimelineSampler(system, 10.0)
        with pytest.raises(ValueError, match="before now"):
            sampler.start(end_time=10.0)


class TestSampleRecords:
    def test_dict_round_trip(self):
        sample = TimelineSample(
            time=50.0,
            site=1,
            cpu_queue=2,
            disk_queue=3,
            cpu_busy=12.5,
            disk_busy=20.25,
            cpu_utilization=0.25,
            disk_utilization=0.405,
            load_io=1,
            load_cpu=2,
            staleness=0.0,
        )
        payload = sample_to_dict(sample)
        assert tuple(payload) == TIMELINE_FIELDS
        restored = sample_from_dict(payload)
        assert restored == sample
        assert isinstance(restored.cpu_queue, int)

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            sample_from_dict({"time": 1.0})
