"""TelemetrySession wiring tests: event logs, counters, merge, lifecycle."""

import pytest

from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.telemetry.events import (
    QueryCompleted,
    RunEnded,
    RunStarted,
    WarmupEnded,
)
from repro.telemetry.session import TelemetryConfig, TelemetrySession

WARMUP = 50.0
DURATION = 200.0


def make_system(config, seed=5, policy="LERT"):
    return DistributedDatabase(config, make_policy(policy), seed=seed)


class TestConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.events
        assert config.sample_interval == 0.0
        assert config.event_capacity is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_interval=-1.0)
        with pytest.raises(ValueError):
            TelemetryConfig(event_capacity=0)


class TestEventCollection:
    def test_collects_lifecycle_and_query_events(self, tiny_config):
        system = make_system(tiny_config)
        with TelemetrySession(system) as session:
            results = system.run(warmup=WARMUP, duration=DURATION)
        names = [event.name for event in session.events]
        assert names[0] == "RunStarted"
        assert "WarmupEnded" in names
        assert names[-1] == "RunEnded"
        completions = [e for e in session.events if isinstance(e, QueryCompleted)]
        # Events from the warmup period are retained too; at least the
        # measured completions must be present.
        assert len(completions) >= results.completions
        started = next(e for e in session.events if isinstance(e, RunStarted))
        assert started.policy == "LERT"
        assert started.seed == 5
        assert started.warmup == WARMUP
        ended = next(e for e in session.events if isinstance(e, RunEnded))
        assert ended.completions == results.completions
        assert ended.time == WARMUP + DURATION

    def test_event_counters_match_log(self, tiny_config):
        system = make_system(tiny_config)
        with TelemetrySession(system) as session:
            system.run(warmup=WARMUP, duration=DURATION)
        summary = session.summary()
        for name in ("QueryCreated", "QueryAllocated", "QueryCompleted"):
            logged = sum(1 for e in session.events if e.name == name)
            assert summary[f"events.{name}"] == logged
            assert logged > 0
        assert summary["events.WarmupEnded"] == 1.0
        assert summary["events.RunEnded"] == 1.0

    def test_warmup_ended_orders_after_truncation(self, tiny_config):
        system = make_system(tiny_config)
        with TelemetrySession(system) as session:
            system.run(warmup=WARMUP, duration=DURATION)
        boundary = next(e for e in session.events if isinstance(e, WarmupEnded))
        assert boundary.time == WARMUP

    def test_capacity_bounds_the_log(self, tiny_config):
        system = make_system(tiny_config)
        with TelemetrySession(
            system, TelemetryConfig(event_capacity=10)
        ) as session:
            system.run(warmup=WARMUP, duration=DURATION)
        assert len(session.events) == 10
        assert session.log is not None and session.log.dropped > 0
        # Newest retained: the RunEnded terminator must survive.
        assert session.events[-1].name == "RunEnded"

    def test_events_disabled(self, tiny_config):
        system = make_system(tiny_config)
        with TelemetrySession(system, TelemetryConfig(events=False)) as session:
            system.run(warmup=WARMUP, duration=DURATION)
        assert session.events == ()
        assert session.log is None
        # No event counters, but monitor bindings still report.
        summary = session.summary()
        assert not any(key.startswith("events.") for key in summary)
        assert "site.0.cpu.busy.avg" in summary


class TestRegistryBindings:
    def test_site_and_query_metrics_present(self, tiny_config):
        system = make_system(tiny_config)
        with TelemetrySession(system) as session:
            results = system.run(warmup=WARMUP, duration=DURATION)
        summary = session.summary()
        for index in range(tiny_config.num_sites):
            assert f"site.{index}.cpu.busy.avg" in summary
            assert f"site.{index}.cpu.queue.avg" in summary
            for disk in range(tiny_config.site.num_disks):
                assert f"site.{index}.disk.{disk}.busy.avg" in summary
        assert summary["queries.waiting.count"] == results.completions
        assert summary["queries.waiting.mean"] == pytest.approx(
            results.mean_waiting_time
        )

    def test_merge_folds_summary_into_results(self, tiny_config):
        system = make_system(tiny_config)
        with TelemetrySession(system) as session:
            results = system.run(warmup=WARMUP, duration=DURATION)
        merged = session.merge(results)
        assert merged.telemetry == session.registry.summary_pairs()
        assert dict(merged.telemetry) == session.summary()
        # Everything else is untouched.
        assert merged.mean_waiting_time == results.mean_waiting_time


class TestLifecycle:
    def test_close_unsubscribes(self, tiny_config):
        system = make_system(tiny_config)
        session = TelemetrySession(system)
        assert system.sim.bus.active
        session.close()
        session.close()  # idempotent
        assert not system.sim.bus.active

    def test_events_survive_close(self, tiny_config):
        system = make_system(tiny_config)
        session = TelemetrySession(system)
        system.run(warmup=WARMUP, duration=DURATION)
        session.close()
        assert len(session.events) > 0
        assert session.summary()  # still readable

    def test_warmup_without_run_started_rejected(self, tiny_config):
        system = make_system(tiny_config)
        TelemetrySession(system, TelemetryConfig(sample_interval=10.0))
        with pytest.raises(ValueError, match="WarmupEnded seen without RunStarted"):
            system.sim.bus.emit(WarmupEnded(time=0.0))
