"""The legacy ``Simulator(trace=...)`` hook: shim behaviour + caller pin.

The typed :class:`~repro.telemetry.events.TraceMessage` stream replaces
the untyped ``trace`` callable.  These tests pin three things:

* passing ``trace=`` still works but raises a ``DeprecationWarning``;
* the compat shim delivers exactly what the old hook delivered;
* no module under ``src/repro`` passes ``trace=`` to ``Simulator``
  anymore (an AST scan, so the deprecated spelling cannot creep back in).
"""

import ast
import pathlib
import warnings

import pytest

import repro
from repro.sim.engine import Simulator
from repro.sim.process import Hold
from repro.telemetry.events import TraceMessage

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent


def _labelled_workload(sim):
    def proc():
        yield Hold(1.0)
        yield Hold(2.0)

    sim.launch(proc(), name="worker")


class TestCompatShim:
    def test_trace_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="Simulator\\(trace=...\\)"):
            Simulator(trace=lambda t, s: None)

    def test_no_warning_without_trace(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Simulator()

    def test_shim_delivers_old_hook_shape(self):
        lines = []
        with pytest.warns(DeprecationWarning):
            sim = Simulator(trace=lambda t, s: lines.append((t, s)))
        _labelled_workload(sim)
        sim.run(until=10.0)
        assert lines
        for time, text in lines:
            assert isinstance(time, float)
            assert isinstance(text, str)

    def test_shim_equals_bus_subscription(self):
        with pytest.warns(DeprecationWarning):
            legacy_sim = Simulator(trace=lambda t, s: legacy.append((t, s)))
        legacy = []
        _labelled_workload(legacy_sim)
        legacy_sim.run(until=10.0)

        modern_sim = Simulator()
        modern = []
        modern_sim.bus.subscribe(
            TraceMessage, lambda e: modern.append((e.time, e.label))
        )
        _labelled_workload(modern_sim)
        modern_sim.run(until=10.0)
        assert legacy == modern

    def test_no_trace_messages_without_explicit_subscriber(self):
        sim = Simulator()
        seen = []
        # A catch-all subscriber does NOT opt in to the high-volume stream.
        sim.bus.subscribe_all(seen.append)
        _labelled_workload(sim)
        sim.run(until=10.0)
        assert not any(isinstance(e, TraceMessage) for e in seen)


class TestNoInternalCallers:
    def test_src_never_passes_trace_to_simulator(self):
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = None
                if isinstance(callee, ast.Name):
                    name = callee.id
                elif isinstance(callee, ast.Attribute):
                    name = callee.attr
                if name != "Simulator":
                    continue
                if any(kw.arg == "trace" for kw in node.keywords):
                    offenders.append(f"{path}:{node.lineno}")
        assert not offenders, (
            "deprecated Simulator(trace=...) callers remain: " + ", ".join(offenders)
        )
