"""Byte-determinism and golden pins for the tracing exporters.

Three layers of guarantees:

* **format round-trips** — Chrome trace JSON and decision JSONL restore
  the exact spans/records they were built from;
* **replay byte-identity** — re-running the same scenario (including a
  faulted run and an open-workload run) exports byte-identical text,
  and a traced run's `SystemResults` equals the parallel backend's
  (``jobs=2``) results for the same task, modulo the telemetry fields
  that never enter the cache;
* **golden pin** — a committed example trace + decision log under
  ``tests/telemetry/data/`` regenerates byte-for-byte, with sha256
  digests recorded in ``MANIFEST.json``.  Like the kernel's golden
  corpus, the pin turns exporter format changes into loud, reviewable
  diffs.
"""

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.parallel import ReplicationTask, run_tasks
from repro.runner import RunSpec, run
from repro.telemetry.session import TelemetryConfig
from repro.telemetry.tracing import (
    TRACE_FORMAT_VERSION,
    decisions_from_jsonl,
    decisions_to_jsonl,
    read_decisions_jsonl,
    read_spans_chrome,
    spans_from_chrome_json,
    spans_to_chrome_json,
)
from repro.workloads import AdmissionControl, PoissonOpen, WorkloadSpec
from tests.golden.corpus import golden_config, golden_fault_plan

DATA_DIR = Path(__file__).resolve().parent / "data"

#: The committed-artifact scenario.  Changing any of this (or the export
#: formats) requires regenerating the artifacts — see MANIFEST.json.
GOLDEN_POLICY = "LERT"
GOLDEN_SPEC = RunSpec(
    warmup=50.0,
    duration=400.0,
    seed=7,
    telemetry=TelemetryConfig(events=False, spans=True, decisions=True),
)

TRACING = TelemetryConfig(events=False, spans=True, decisions=True)


def golden_report():
    """The committed scenario, replayed."""
    return run(golden_config(), GOLDEN_POLICY, GOLDEN_SPEC)


def build_artifacts():
    """The committed artifact bytes: (chrome trace, decision JSONL)."""
    report = golden_report()
    return spans_to_chrome_json(report.spans), decisions_to_jsonl(report.decisions)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestRoundTrips:
    def test_chrome_trace_round_trip(self, tiny_config):
        spec = dataclasses.replace(GOLDEN_SPEC, duration=200.0)
        report = run(tiny_config, "BNQRD", spec)
        text = spans_to_chrome_json(report.spans)
        assert spans_from_chrome_json(text) == report.spans

    def test_chrome_trace_is_valid_trace_event_json(self, tiny_config):
        spec = dataclasses.replace(GOLDEN_SPEC, duration=200.0)
        report = run(tiny_config, "BNQRD", spec)
        document = json.loads(spans_to_chrome_json(report.spans))
        assert document["metadata"]["trace_format_version"] == (
            TRACE_FORMAT_VERSION
        )
        assert document["displayTimeUnit"] == "ms"
        for event in document["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert isinstance(event["args"]["span_id"], str)

    def test_decisions_round_trip(self, tiny_config):
        spec = dataclasses.replace(GOLDEN_SPEC, duration=200.0)
        report = run(tiny_config, "BNQRD", spec)
        text = decisions_to_jsonl(report.decisions)
        assert decisions_from_jsonl(text) == report.decisions

    def test_file_io_round_trip(self, tiny_config, tmp_path):
        spec = dataclasses.replace(GOLDEN_SPEC, duration=200.0)
        report = run(tiny_config, "BNQRD", spec)
        spans_path = report.write_spans(tmp_path / "trace.json")
        decisions_path = report.write_decisions(tmp_path / "decisions.jsonl")
        assert read_spans_chrome(spans_path) == report.spans
        assert read_decisions_jsonl(decisions_path) == report.decisions

    def test_non_trace_document_rejected(self):
        with pytest.raises(ValueError):
            spans_from_chrome_json('{"not": "a trace"}')


class TestReplayByteIdentity:
    def _exports(self, config, policy, spec):
        report = run(config, policy, spec)
        return (
            spans_to_chrome_json(report.spans),
            decisions_to_jsonl(report.decisions),
        )

    def test_plain_run(self, tiny_config):
        spec = dataclasses.replace(GOLDEN_SPEC, duration=300.0)
        assert self._exports(tiny_config, "BNQRD", spec) == self._exports(
            tiny_config, "BNQRD", spec
        )

    def test_faulted_run(self):
        spec = RunSpec(
            warmup=100.0,
            duration=900.0,
            seed=5,
            telemetry=TRACING,
            faults=golden_fault_plan(),
        )
        first = self._exports(golden_config(), "RANDOM", spec)
        second = self._exports(golden_config(), "RANDOM", spec)
        assert first == second
        # The chaos plan really exercised the fault span kinds.
        kinds = {span.kind for span in spans_from_chrome_json(first[0])}
        assert kinds & {"abort", "backoff", "drop", "lost"}

    def test_open_workload_run(self, tiny_config):
        spec = RunSpec(
            warmup=50.0,
            duration=400.0,
            seed=9,
            telemetry=TRACING,
            workload=WorkloadSpec(
                arrivals=PoissonOpen(rate=0.4),
                admission=AdmissionControl(max_pending=4),
            ),
        )
        first = self._exports(tiny_config, "BNQRD", spec)
        second = self._exports(tiny_config, "BNQRD", spec)
        assert first == second

    def test_traced_results_match_parallel_backend(self, tiny_config):
        """Tracing never leaks into the results the cache/backend sees."""
        spec = dataclasses.replace(GOLDEN_SPEC, duration=300.0)
        traced = run(tiny_config, "BNQRD", spec)
        task = ReplicationTask(
            config=tiny_config,
            policy="BNQRD",
            seed=spec.seed,
            warmup=spec.warmup,
            duration=spec.duration,
        )
        serial = run_tasks([task], jobs=1)
        parallel = run_tasks([task], jobs=2)
        assert serial == parallel
        assert (
            dataclasses.replace(
                traced.results, telemetry=None, spans=None, decisions=None
            )
            == serial[0]
        )


class TestGoldenArtifacts:
    """The committed example trace regenerates byte-for-byte."""

    @pytest.fixture(scope="class")
    def artifacts(self):
        return build_artifacts()

    def test_manifest_digests_match_committed_files(self):
        manifest = json.loads(
            (DATA_DIR / "MANIFEST.json").read_text(encoding="utf-8")
        )
        trace_text = (DATA_DIR / "trace.json").read_text(encoding="utf-8")
        decisions_text = (DATA_DIR / "decisions.jsonl").read_text(
            encoding="utf-8"
        )
        assert manifest["trace_sha256"] == _sha256(trace_text)
        assert manifest["decisions_sha256"] == _sha256(decisions_text)
        assert manifest["trace_format_version"] == TRACE_FORMAT_VERSION

    def test_replay_reproduces_committed_bytes(self, artifacts):
        trace_text, decisions_text = artifacts
        assert trace_text == (DATA_DIR / "trace.json").read_text(
            encoding="utf-8"
        )
        assert decisions_text == (DATA_DIR / "decisions.jsonl").read_text(
            encoding="utf-8"
        )

    def test_committed_regrets_recompute(self):
        """The committed decision log is self-consistent (cost model)."""
        from repro.telemetry.tracing import decision_cost

        records = read_decisions_jsonl(DATA_DIR / "decisions.jsonl")
        assert records
        for record in records:
            cost_chosen = decision_cost(
                record.true_loads[record.chosen_site],
                record.est_service,
                record.est_transfer,
                record.est_return,
                remote=record.chosen_site != record.home_site,
            )
            assert record.cost_chosen == cost_chosen
            assert record.regret == record.cost_chosen - record.cost_best
            assert record.regret >= 0.0

    def test_committed_trace_parses_as_spans(self):
        spans = read_spans_chrome(DATA_DIR / "trace.json")
        assert spans
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))
