"""Unit tests for the span model (`repro.telemetry.tracing.spans`).

The collector is driven two ways: synthetically (events pushed straight
onto a bare bus — every pairing rule is exercised in isolation) and from
real runs (the assembled stream is structurally consistent and
deterministic).
"""

import dataclasses

from repro.runner import RunSpec, run
from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    MessageDropped,
    QueryAborted,
    QueryAllocated,
    QueryCompleted,
    QueryCreated,
    QueryLost,
    QueryRetried,
    QueryShed,
    QueryTransferred,
    RunStarted,
    ServiceFinished,
    ServiceStarted,
)
from repro.telemetry.session import TelemetryConfig
from repro.telemetry.tracing import Span, SpanCollector, span_id

SEED = 13


def started_bus() -> "tuple[EventBus, SpanCollector]":
    bus = EventBus()
    collector = SpanCollector(bus)
    bus.emit(
        RunStarted(time=0.0, policy="LERT", seed=SEED, warmup=0.0, duration=100.0)
    )
    return bus, collector


def lifecycle(bus: EventBus, qid: int = 3) -> None:
    """One complete remote query: create → allocate → serve → complete."""
    bus.emit(
        QueryCreated(
            time=1.0, qid=qid, class_name="io", home_site=2, estimated_reads=4.0
        )
    )
    bus.emit(
        QueryAllocated(
            time=1.0, qid=qid, class_name="io", home_site=2, execution_site=0
        )
    )
    bus.emit(
        QueryTransferred(
            time=1.0, qid=qid, source=2, destination=0, kind="query",
            transfer_time=0.25,
        )
    )
    bus.emit(ServiceStarted(time=1.25, qid=qid, site=0, reads=4))
    bus.emit(ServiceFinished(time=7.0, qid=qid, site=0, service_time=5.75))
    bus.emit(
        QueryTransferred(
            time=7.0, qid=qid, source=0, destination=2, kind="result",
            transfer_time=0.5,
        )
    )
    bus.emit(
        QueryCompleted(
            time=7.5, qid=qid, class_name="io", home_site=2, execution_site=0,
            remote=True, created_at=1.0, allocated_at=1.0, started_at=1.25,
            finished_at=7.0, service_time=5.75, waiting_time=1.75, migrations=0,
        )
    )


class TestSpanId:
    def test_is_16_hex_chars(self):
        sid = span_id(1, 2, "queue", 0)
        assert len(sid) == 16
        int(sid, 16)  # parses as hex

    def test_deterministic(self):
        assert span_id(1, 2, "queue", 0) == span_id(1, 2, "queue", 0)

    def test_every_component_matters(self):
        base = span_id(1, 2, "queue", 0)
        assert span_id(9, 2, "queue", 0) != base
        assert span_id(1, 9, "queue", 0) != base
        assert span_id(1, 2, "service", 0) != base
        assert span_id(1, 2, "queue", 1) != base


class TestLifecyclePairing:
    def test_complete_remote_query(self):
        bus, collector = started_bus()
        lifecycle(bus)
        spans = {span.kind: span for span in collector.spans}
        assert set(spans) == {
            "query", "queue", "service", "transfer.query", "transfer.result"
        }
        assert spans["query"] == Span(
            span_id=span_id(SEED, 3, "query", 0), kind="query", qid=3,
            site=2, start=1.0, end=7.5,
        )
        assert spans["queue"].start == 1.0 and spans["queue"].end == 1.25
        assert spans["queue"].site == 0
        assert spans["service"].start == 1.25 and spans["service"].end == 7.0
        assert spans["transfer.query"].end == 1.25
        assert spans["transfer.result"].end == 7.5
        assert collector.open_spans == 0

    def test_duration_property(self):
        bus, collector = started_bus()
        lifecycle(bus)
        (service,) = [s for s in collector.spans if s.kind == "service"]
        assert service.duration == 7.0 - 1.25

    def test_ids_are_unique_within_a_run(self):
        bus, collector = started_bus()
        lifecycle(bus, qid=1)
        lifecycle(bus, qid=2)
        ids = [span.span_id for span in collector.spans]
        assert len(ids) == len(set(ids))

    def test_repeated_kind_bumps_index(self):
        bus, collector = started_bus()
        bus.emit(QueryRetried(time=5.0, qid=4, attempt=1, backoff=2.0))
        bus.emit(QueryRetried(time=9.0, qid=4, attempt=2, backoff=4.0))
        first, second = collector.spans
        assert first.span_id == span_id(SEED, 4, "backoff", 0)
        assert second.span_id == span_id(SEED, 4, "backoff", 1)
        assert second.end == 9.0 + 4.0

    def test_unfinished_spans_are_withheld(self):
        bus, collector = started_bus()
        bus.emit(
            QueryCreated(
                time=1.0, qid=3, class_name="io", home_site=2,
                estimated_reads=4.0,
            )
        )
        assert collector.spans == ()
        assert collector.open_spans == 1
        assert collector.summary().unfinished == 1


class TestFaultSpans:
    def test_abort_closes_open_phases(self):
        bus, collector = started_bus()
        bus.emit(
            QueryAllocated(
                time=1.0, qid=3, class_name="io", home_site=2, execution_site=1
            )
        )
        bus.emit(ServiceStarted(time=2.0, qid=3, site=1, reads=4))
        bus.emit(QueryAborted(time=5.0, qid=3, site=1, attempt=1))
        kinds = {span.kind: span for span in collector.spans}
        assert set(kinds) == {"queue", "service", "abort"}
        assert kinds["queue"].end == 2.0  # closed by the service start
        assert kinds["service"].end == 5.0
        assert kinds["abort"].start == kinds["abort"].end == 5.0

    def test_lost_ends_the_query_span(self):
        bus, collector = started_bus()
        bus.emit(
            QueryCreated(
                time=1.0, qid=3, class_name="io", home_site=2,
                estimated_reads=4.0,
            )
        )
        bus.emit(QueryLost(time=9.0, qid=3, attempts=6))
        kinds = {span.kind: span for span in collector.spans}
        assert kinds["lost"].site == 2  # the remembered home site
        assert kinds["query"].end == 9.0

    def test_drop_is_instant_at_destination(self):
        bus, collector = started_bus()
        bus.emit(
            MessageDropped(time=4.0, source=1, destination=0, kind="result", qid=5)
        )
        (span,) = collector.spans
        assert span.kind == "drop" and span.site == 0
        assert span.start == span.end == 4.0

    def test_shed_uses_serial_keyed_id(self):
        bus, collector = started_bus()
        bus.emit(QueryShed(time=3.0, site=1, serial=42, pending=16))
        (span,) = collector.spans
        assert span.qid == -1
        assert span.site == 1
        assert span.span_id == span_id(SEED, 42, "shed.s1", 0)


class TestCollectorLifecycle:
    def test_incremental_reads_see_later_events(self):
        # Reading spans mid-run must not lose events buffered afterwards.
        bus, collector = started_bus()
        lifecycle(bus, qid=1)
        assert len(collector.spans) == 5
        lifecycle(bus, qid=2)
        assert len(collector.spans) == 10

    def test_close_stops_collection_and_is_idempotent(self):
        bus, collector = started_bus()
        lifecycle(bus, qid=1)
        collector.close()
        collector.close()
        lifecycle(bus, qid=2)
        assert len(collector.spans) == 5  # the post-close query is unseen

    def test_summary_counts(self):
        bus, collector = started_bus()
        lifecycle(bus, qid=1)
        lifecycle(bus, qid=2)
        summary = collector.summary()
        assert summary.count == 10
        assert summary.queries == 2
        assert summary.unfinished == 0
        assert dict(summary.kinds)["transfer.query"] == 2
        assert [kind for kind, _ in summary.kinds] == sorted(
            kind for kind, _ in summary.kinds
        )


class TestRealRuns:
    SPEC = RunSpec(
        warmup=50.0,
        duration=300.0,
        seed=11,
        telemetry=TelemetryConfig(spans=True),
    )

    def test_run_produces_consistent_spans(self, tiny_config):
        report = run(tiny_config, "BNQRD", self.SPEC)
        spans = report.spans
        assert spans, "a real run must produce spans"
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))
        for span in spans:
            assert span.end >= span.start
        assert report.results.spans is not None
        assert report.results.spans.count == len(spans)

    def test_spans_are_deterministic(self, tiny_config):
        first = run(tiny_config, "BNQRD", self.SPEC)
        second = run(tiny_config, "BNQRD", self.SPEC)
        assert first.spans == second.spans

    def test_spans_do_not_perturb_results(self, tiny_config):
        bare = run(
            tiny_config, "BNQRD", dataclasses.replace(self.SPEC, telemetry=None)
        )
        traced = run(tiny_config, "BNQRD", self.SPEC)
        assert (
            dataclasses.replace(
                traced.results, telemetry=None, spans=None
            )
            == bare.results
        )
