"""Admission control: shedding, counters, telemetry, results plumbing."""

import pytest

from repro.model.serialization import (
    results_from_dict,
    results_to_dict,
    workload_summary_from_dict,
    workload_summary_to_dict,
)
from repro.runner import RunSpec, run
from repro.telemetry.events import QueryShed
from repro.telemetry.session import TelemetryConfig
from repro.workloads import (
    AdmissionControl,
    PoissonOpen,
    TraceDriven,
    WorkloadSpec,
)

#: Well past tiny_config's capacity, so a tight limit must shed.
OVERLOAD = PoissonOpen(rate=0.5)


def open_run(config, *, max_pending=2, telemetry=None, seed=11, rate=None):
    arrivals = OVERLOAD if rate is None else PoissonOpen(rate=rate)
    spec = WorkloadSpec(
        arrivals=arrivals,
        admission=AdmissionControl(max_pending=max_pending),
    )
    return run(
        config,
        "LOCAL",
        RunSpec(
            warmup=50.0,
            duration=500.0,
            seed=seed,
            telemetry=telemetry,
            workload=spec,
        ),
    )


class TestCounters:
    def test_offered_splits_into_admitted_and_shed(self, tiny_config):
        summary = open_run(tiny_config).results.workload
        assert summary is not None
        assert summary.kind == "poisson"
        assert summary.offered == summary.admitted + summary.shed
        assert summary.shed > 0  # the overload really bit
        assert summary.shed_fraction == pytest.approx(
            summary.shed / summary.offered
        )

    def test_closed_run_reports_no_workload_summary(self, tiny_config):
        report = run(
            tiny_config, "LOCAL", RunSpec(warmup=50.0, duration=500.0, seed=11)
        )
        assert report.results.workload is None

    def test_unlimited_admission_never_sheds(self, tiny_config):
        spec = WorkloadSpec(arrivals=PoissonOpen(rate=0.02))
        report = run(
            tiny_config,
            "LOCAL",
            RunSpec(warmup=50.0, duration=500.0, seed=11, workload=spec),
        )
        summary = report.results.workload
        assert summary is not None
        assert summary.shed == 0
        assert summary.shed_fraction == 0.0
        assert summary.offered == summary.admitted

    def test_looser_limit_sheds_less(self, tiny_config):
        tight = open_run(tiny_config, max_pending=1).results.workload
        loose = open_run(tiny_config, max_pending=50).results.workload
        assert tight.shed > loose.shed
        assert tight.shed_fraction > loose.shed_fraction


class TestCommonRandomNumbers:
    def test_offered_serials_are_admission_independent(self, tiny_config):
        """Runs differing only in max_pending face the same arrivals.

        Serial numbers count *offered* arrivals, so the n-th arrival at
        a site draws the same derived stream — and the same offered
        count — whatever the admission limit does.
        """
        tight = open_run(tiny_config, max_pending=1).results.workload
        loose = open_run(tiny_config, max_pending=50).results.workload
        assert tight.offered == loose.offered


class TestShedTelemetry:
    def test_shed_arrivals_emit_queryshed_events(self, tiny_config):
        report = open_run(
            tiny_config, telemetry=TelemetryConfig(events=True)
        )
        sheds = [e for e in report.events if isinstance(e, QueryShed)]
        assert sheds
        # The event log spans the whole run; the counter resets at the
        # end of warmup, so it must match the post-warmup events.
        after_warmup = [e for e in sheds if e.time > 50.0]
        assert len(after_warmup) == report.results.workload.shed
        for event in sheds:
            assert event.pending >= 2  # at (or racing past) the limit
            assert 0 <= event.site < tiny_config.num_sites
            assert event.serial >= 1

    def test_trace_overload_sheds_deterministically(self, tiny_config):
        # Three simultaneous arrivals at one site under max_pending=2:
        # exactly the third is shed, no randomness involved.
        spec = WorkloadSpec(
            arrivals=TraceDriven(arrivals=((1.0, 0), (1.0, 0), (1.0, 0))),
            admission=AdmissionControl(max_pending=2),
        )
        report = run(
            tiny_config,
            "LOCAL",
            RunSpec(
                warmup=0.0,
                duration=50.0,
                seed=5,
                telemetry=TelemetryConfig(events=True),
                workload=spec,
            ),
        )
        summary = report.results.workload
        assert (summary.offered, summary.admitted, summary.shed) == (3, 2, 1)
        (shed,) = [e for e in report.events if isinstance(e, QueryShed)]
        assert (shed.time, shed.site, shed.serial) == (1.0, 0, 3)


class TestSummarySerialization:
    def test_summary_roundtrips(self, tiny_config):
        summary = open_run(tiny_config).results.workload
        restored = workload_summary_from_dict(workload_summary_to_dict(summary))
        assert restored == summary

    def test_results_with_workload_roundtrip(self, tiny_config):
        results = open_run(tiny_config).results
        assert results.workload is not None
        assert results_from_dict(results_to_dict(results)) == results

    def test_closed_results_payload_has_no_workload_key(self, tiny_config):
        """Golden-digest stability: closed runs serialize exactly as before."""
        report = run(
            tiny_config, "LOCAL", RunSpec(warmup=50.0, duration=500.0, seed=11)
        )
        assert "workload" not in results_to_dict(report.results)
