"""Arrival-process mechanics: thinning, phase tracking, trace loading.

The property-based tests pin the two sampling primitives everything
open-system rides on: Lewis–Shedler thinning (exactness and
determinism) and the lazily realized MMPP phase timeline (monotone,
cyclic, a pure function of its stream).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    MMPP,
    PhaseTrack,
    PoissonOpen,
    TraceDriven,
    WorkloadError,
    WorkloadSpec,
    next_thinned_gap,
)


class TestThinning:
    def test_gap_is_positive(self):
        rng = random.Random(7)
        for _ in range(200):
            gap = next_thinned_gap(rng, 2.0, lambda t: 1.0, now=0.0)
            assert gap > 0

    def test_same_stream_same_gaps(self):
        a, b = random.Random(11), random.Random(11)
        gaps_a = [next_thinned_gap(a, 2.0, lambda t: 1.3, now=0.0) for _ in range(50)]
        gaps_b = [next_thinned_gap(b, 2.0, lambda t: 1.3, now=0.0) for _ in range(50)]
        assert gaps_a == gaps_b

    def test_constant_intensity_at_majorizer_accepts_first_candidate(self):
        # intensity == lam_max: every candidate is accepted, so the gap
        # is exactly one exponential draw from the same stream.
        a, b = random.Random(3), random.Random(3)
        gap = next_thinned_gap(a, 2.0, lambda t: 2.0, now=5.0)
        assert gap == (5.0 + b.expovariate(2.0)) - 5.0  # same float path

    def test_rejects_nonpositive_majorizer(self):
        with pytest.raises(WorkloadError, match="lam_max"):
            next_thinned_gap(random.Random(1), 0.0, lambda t: 0.0, now=0.0)

    def test_rejects_intensity_above_majorizer(self):
        with pytest.raises(WorkloadError, match="exceeds"):
            next_thinned_gap(random.Random(1), 1.0, lambda t: 2.0, now=0.0)

    @settings(deadline=None, max_examples=50)
    @given(
        seed=st.integers(0, 10_000),
        lam_max=st.floats(min_value=0.1, max_value=10.0),
        fraction=st.floats(min_value=0.05, max_value=1.0),
        now=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_gap_positive_for_any_admissible_intensity(
        self, seed, lam_max, fraction, now
    ):
        rng = random.Random(seed)
        rate = lam_max * fraction
        gap = next_thinned_gap(rng, lam_max, lambda t: rate, now=now)
        assert gap > 0

    def test_thinned_mean_rate_matches_intensity(self):
        # 1000 gaps at intensity 0.5 under majorizer 2.0: the mean gap
        # must estimate 1/0.5, not 1/2.0 (thinning, not just candidates).
        rng = random.Random(42)
        gaps = [
            next_thinned_gap(rng, 2.0, lambda t: 0.5, now=0.0)
            for _ in range(1000)
        ]
        mean = 0.0
        for gap in gaps:
            mean += gap
        mean /= len(gaps)
        assert mean == pytest.approx(2.0, rel=0.1)


class TestPhaseTrack:
    def test_starts_in_start_phase(self):
        track = PhaseTrack(random.Random(1), (10.0, 20.0))
        assert track.phase == 0
        track = PhaseTrack(random.Random(1), (10.0, 20.0), start_phase=1)
        assert track.phase == 1

    def test_rejects_decreasing_query_times(self):
        track = PhaseTrack(random.Random(1), (10.0, 20.0))
        track.phase_at(5.0)
        with pytest.raises(WorkloadError, match="nondecreasing"):
            track.phase_at(4.0)

    def test_rejects_empty_means_and_bad_start(self):
        with pytest.raises(WorkloadError):
            PhaseTrack(random.Random(1), ())
        with pytest.raises(WorkloadError, match="start_phase"):
            PhaseTrack(random.Random(1), (10.0,), start_phase=3)

    @settings(deadline=None, max_examples=60)
    @given(
        seed=st.integers(0, 10_000),
        means=st.lists(
            st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=4
        ),
        times=st.lists(
            st.floats(min_value=0.0, max_value=2000.0), min_size=1, max_size=30
        ),
    )
    def test_phase_path_is_pure_function_of_stream(self, seed, means, times):
        """Observing the chain densely or sparsely gives the same path."""
        times = sorted(times)
        dense = PhaseTrack(random.Random(seed), means)
        sparse = PhaseTrack(random.Random(seed), means)
        dense_path = [dense.phase_at(t) for t in times]
        # The sparse observer only looks at every third time; where it
        # does look, it must agree with the dense observer exactly.
        for index in range(0, len(times), 3):
            assert sparse.phase_at(times[index]) == dense_path[index]

    @settings(deadline=None, max_examples=60)
    @given(
        seed=st.integers(0, 10_000),
        num_phases=st.integers(min_value=1, max_value=4),
        horizon=st.floats(min_value=1.0, max_value=200.0),
    )
    def test_phase_is_always_a_valid_index(self, seed, num_phases, horizon):
        means = tuple(1.0 + i for i in range(num_phases))
        track = PhaseTrack(random.Random(seed), means)
        t = 0.0
        while t <= horizon:
            assert 0 <= track.phase_at(t) < num_phases
            t += 1.0

    def test_phases_cycle_in_order(self):
        """With fixed holding draws the phase path is exactly cyclic."""

        class StubRng:
            def expovariate(self, rate):
                return 10.0  # every phase holds for exactly 10 time units

        track = PhaseTrack(StubRng(), (1.0, 2.0, 3.0))
        assert [track.phase_at(float(t)) for t in range(0, 60, 5)] == [
            0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2,
        ]

    def test_two_phase_chain_alternates(self):
        track = PhaseTrack(random.Random(5), (5.0, 5.0))
        seen = []
        t = 0.0
        while t < 500.0:
            phase = track.phase_at(t)
            if not seen or seen[-1] != phase:
                seen.append(phase)
            t += 0.5
        assert len(seen) > 3  # it really switches
        assert seen == [i % 2 for i in range(len(seen))]


class TestTraceDriven:
    def test_from_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"time": 0.0, "site": 0}\n'
            "\n"
            '{"time": 2.5, "site": 1}\n'
            '{"time": 2.5, "site": 0}\n',
            encoding="utf-8",
        )
        trace = TraceDriven.from_jsonl(path)
        assert trace.arrivals == ((0.0, 0), (2.5, 1), (2.5, 0))

    def test_from_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"time": 0.0, "site": 0}\n{"oops": 1}\n')
        with pytest.raises(WorkloadError, match=":2"):
            TraceDriven.from_jsonl(path)

    def test_replays_exact_times(self, tiny_config):
        from repro.runner import RunSpec, run
        from repro.telemetry.session import TelemetryConfig

        trace = TraceDriven(arrivals=((5.0, 0), (5.0, 1), (12.0, 2)))
        report = run(
            tiny_config,
            "LOCAL",
            RunSpec(
                warmup=0.0,
                duration=100.0,
                seed=3,
                telemetry=TelemetryConfig(events=True),
                workload=WorkloadSpec(arrivals=trace),
            ),
        )
        created = [
            (event.time, event.home_site)
            for event in report.events
            if type(event).__name__ == "QueryCreated"
        ]
        assert created == [(5.0, 0), (5.0, 1), (12.0, 2)]


class TestStreamIsolation:
    def test_arrival_streams_do_not_disturb_service_draws(self, tiny_config):
        """CRN across workloads: same (site, serial) -> same demands.

        The first open arrival at site 0 must realize the same query
        under Poisson and MMPP arrivals — its demand stream is keyed by
        the offered serial, not by the arrival process's own draws.
        """
        from repro.model.system import DistributedDatabase
        from repro.policies.registry import make_policy

        demands = {}
        for label, arrivals in (
            ("poisson", PoissonOpen(rate=0.05)),
            ("mmpp", MMPP(rates=(0.03, 0.07), mean_holding=(50.0, 50.0))),
        ):
            system = DistributedDatabase(
                tiny_config,
                make_policy("LOCAL"),
                seed=9,
                workload=WorkloadSpec(arrivals=arrivals),
            )
            query, _ = system.workload.new_open_query(0, 1)
            demands[label] = (query.class_index, query.estimated_reads)
        assert demands["poisson"] == demands["mmpp"]
