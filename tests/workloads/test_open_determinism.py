"""Open-arrival determinism: the same ``(seed, WorkloadSpec)`` replays
byte-identically, serially and under the process pool, with telemetry
and faults in the mix — and the default closed spec is a strict no-op.

The open-system analogue of ``tests/faults/test_chaos_determinism.py``.
"""

import dataclasses

import pytest

from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.context import StudyContext
from repro.experiments.parallel import (
    ReplicationTask,
    replication_tasks,
    run_tasks,
)
from repro.experiments.runconfig import RunSettings
from repro.faults.plan import FaultPlan, SiteOutage
from repro.model.config import paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.runner import RunSpec, run
from repro.sanitize import compare_replays
from repro.telemetry.exporters import events_to_jsonl
from repro.telemetry.session import TelemetryConfig
from repro.workloads import (
    AdmissionControl,
    MMPP,
    PoissonOpen,
    WorkloadSpec,
)

POISSON = WorkloadSpec(
    arrivals=PoissonOpen(rate=0.08),
    admission=AdmissionControl(max_pending=8),
)
BURSTY = WorkloadSpec(
    arrivals=MMPP(rates=(0.02, 0.30), mean_holding=(100.0, 100.0)),
    admission=AdmissionControl(max_pending=8),
)

SPEC = dict(warmup=50.0, duration=500.0, seed=1234)


def open_report(config, *, policy="BNQ", workload=POISSON, telemetry=None,
                faults=None, seed=1234):
    return run(
        config,
        policy,
        RunSpec(
            warmup=50.0,
            duration=500.0,
            seed=seed,
            telemetry=telemetry,
            faults=faults,
            workload=workload,
        ),
    )


class TestByteIdenticalReplay:
    def test_results_replay_identically(self, tiny_config):
        for workload in (POISSON, BURSTY):
            first = open_report(tiny_config, workload=workload).results
            second = open_report(tiny_config, workload=workload).results
            assert first == second, workload.kind
            assert first.workload is not None

    def test_telemetry_jsonl_is_byte_identical(self, tiny_config):
        config = TelemetryConfig(events=True)
        first = open_report(tiny_config, telemetry=config, workload=BURSTY)
        second = open_report(tiny_config, telemetry=config, workload=BURSTY)
        assert events_to_jsonl(first.events) == events_to_jsonl(second.events)

    def test_faulted_open_run_replays(self, tiny_config):
        plan = FaultPlan(site_outages=(SiteOutage(1, 120.0, 60.0),))
        config = TelemetryConfig(events=True)
        first = open_report(
            tiny_config, workload=POISSON, faults=plan, telemetry=config
        )
        second = open_report(
            tiny_config, workload=POISSON, faults=plan, telemetry=config
        )
        assert first.results == second.results
        assert events_to_jsonl(first.events) == events_to_jsonl(second.events)

    def test_different_seed_diverges(self, tiny_config):
        a = open_report(tiny_config, seed=1).results
        b = open_report(tiny_config, seed=2).results
        assert a != b

    def test_sanitizer_sees_identical_draw_traces(self, tiny_config):
        """Instrumented replay: every draw and event pop matches."""

        def scenario():
            return open_report(
                tiny_config,
                workload=BURSTY,
                telemetry=TelemetryConfig(events=True),
            )

        report = compare_replays(scenario, runs=2)
        assert report.identical, report.first_divergence


class TestDefaultSpecIsStrictNoop:
    def test_default_spec_matches_no_workload(self, tiny_config):
        plain = run(tiny_config, "BNQ", RunSpec(**SPEC)).results
        defaulted = run(
            tiny_config, "BNQ", RunSpec(**SPEC, workload=WorkloadSpec())
        ).results
        assert defaulted == plain
        assert defaulted.workload is None  # normalized away entirely

    def test_default_spec_telemetry_matches_no_workload(self, tiny_config):
        config = TelemetryConfig(events=True)
        plain = run(
            tiny_config, "BNQ", RunSpec(**SPEC, telemetry=config)
        ).events
        defaulted = run(
            tiny_config,
            "BNQ",
            RunSpec(**SPEC, telemetry=config, workload=WorkloadSpec()),
        ).events
        assert events_to_jsonl(plain) == events_to_jsonl(defaulted)

    def test_runspec_normalizes_default_to_none(self):
        assert RunSpec(workload=WorkloadSpec()).workload is None
        assert RunSpec(workload=POISSON).workload == POISSON

    def test_settings_normalize_default_to_none(self):
        settings = RunSettings(
            warmup=10.0, duration=20.0, workload=WorkloadSpec()
        )
        assert settings.workload is None

    def test_task_normalizes_default_to_none(self, tiny_config):
        task = ReplicationTask(
            config=tiny_config,
            policy="BNQ",
            seed=1,
            warmup=10.0,
            duration=20.0,
            workload=WorkloadSpec(),
        )
        assert task.workload is None


class TestExecuteBindsAtConstruction:
    def test_execute_rejects_mismatched_workload(self, tiny_config):
        from repro.runner import execute

        system = DistributedDatabase(tiny_config, make_policy("BNQ"), seed=1)
        with pytest.raises(ValueError, match="bind at construction"):
            execute(
                system,
                RunSpec(warmup=10.0, duration=20.0, seed=1, workload=POISSON),
            )

    def test_open_workload_rejected_for_extension_kinds(self, tiny_config):
        with pytest.raises(ValueError, match="standard"):
            ReplicationTask(
                config=tiny_config,
                policy="BNQ",
                seed=1,
                warmup=10.0,
                duration=20.0,
                system_kind="stale",
                workload=POISSON,
            )


class TestParallelReplay:
    def test_jobs2_matches_serial(self, tiny_config):
        settings = RunSettings(
            warmup=50.0, duration=400.0, replications=2, workload=BURSTY
        )
        tasks = replication_tasks(tiny_config, "BNQ", settings)
        assert all(task.workload == BURSTY for task in tasks)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert serial == parallel
        assert all(r.workload is not None for r in serial)


class TestCacheSeparation:
    def test_open_key_differs_from_closed(self, tiny_config):
        base = cache_key(tiny_config, "BNQ", seed=1, warmup=10.0, duration=20.0)
        opened = cache_key(
            tiny_config,
            "BNQ",
            seed=1,
            warmup=10.0,
            duration=20.0,
            workload=POISSON,
        )
        assert base != opened

    def test_none_workload_key_is_the_legacy_key(self, tiny_config):
        """``workload=None`` must hash exactly like the pre-workloads
        payload, so existing cache archives stay addressable."""
        base = cache_key(tiny_config, "BNQ", seed=1, warmup=10.0, duration=20.0)
        explicit = cache_key(
            tiny_config,
            "BNQ",
            seed=1,
            warmup=10.0,
            duration=20.0,
            workload=None,
        )
        assert base == explicit

    def test_different_specs_different_keys(self, tiny_config):
        a = cache_key(
            tiny_config,
            "BNQ",
            seed=1,
            warmup=10.0,
            duration=20.0,
            workload=POISSON,
        )
        b = cache_key(
            tiny_config,
            "BNQ",
            seed=1,
            warmup=10.0,
            duration=20.0,
            workload=dataclasses.replace(
                POISSON, admission=AdmissionControl(max_pending=9)
            ),
        )
        assert a != b

    def test_open_run_roundtrips_through_cache(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        settings = RunSettings(warmup=50.0, duration=400.0, workload=POISSON)
        tasks = replication_tasks(tiny_config, "BNQ", settings)
        fresh = run_tasks(tasks, cache=cache)
        again = run_tasks(tasks, cache=cache)
        assert fresh == again
        assert fresh[0].workload is not None
        assert cache.stats.hits == len(tasks)

    def test_closed_entry_never_answers_open_task(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        plain_settings = RunSettings(warmup=50.0, duration=400.0)
        plain = run_tasks(
            replication_tasks(tiny_config, "BNQ", plain_settings), cache=cache
        )
        opened = run_tasks(
            replication_tasks(
                tiny_config, "BNQ", plain_settings.with_workload(POISSON)
            ),
            cache=cache,
        )
        assert plain != opened  # a cache mixup would make these equal
        assert opened[0].workload is not None
        assert plain[0].workload is None


class TestOpenSystemExperiment:
    def test_grid_runs_and_checks_shed_ordering(self, tmp_path):
        from repro.experiments import open_system

        settings = RunSettings(warmup=50.0, duration=300.0, replications=1)
        result = open_system.run_experiment(
            settings,
            load_factors=(1.2,),
            kinds=("poisson",),
            context=StudyContext(cache=ResultCache(tmp_path / "cache")),
        )
        assert len(result.cells) == len(open_system.POLICIES)
        assert result.load_sharing_sheds_less_past_saturation()
        table = open_system.format_table(result)
        assert "shed%" in table

    def test_grid_replays_from_cache(self, tmp_path):
        from repro.experiments import open_system

        settings = RunSettings(warmup=50.0, duration=200.0, replications=1)
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            load_factors=(0.8,),
            kinds=("mmpp",),
            context=StudyContext(cache=cache),
        )
        first = open_system.run_experiment(settings, **kwargs)
        second = open_system.run_experiment(settings, **kwargs)
        assert open_system.format_table(first) == open_system.format_table(
            second
        )
        assert cache.stats.hits > 0
