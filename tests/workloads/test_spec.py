"""WorkloadSpec / AdmissionControl: validation, normalization, JSON."""

import dataclasses
import math

import pytest

from repro.model.config import paper_defaults
from repro.model.serialization import (
    ConfigError,
    load_workload_spec,
    save_workload_spec,
    workload_spec_from_dict,
    workload_spec_to_dict,
)
from repro.workloads import (
    AdmissionControl,
    ClosedTerminals,
    DiurnalRate,
    MMPP,
    PoissonOpen,
    TraceDriven,
    WorkloadError,
    WorkloadSpec,
    estimate_site_capacity,
    normalize_workload,
)

OPEN_SPECS = (
    WorkloadSpec(arrivals=PoissonOpen(rate=0.08)),
    WorkloadSpec(arrivals=PoissonOpen(rate=0.5, per_site=False)),
    WorkloadSpec(
        arrivals=PoissonOpen(rate=0.08),
        admission=AdmissionControl(max_pending=32),
    ),
    WorkloadSpec(
        arrivals=MMPP(rates=(0.02, 0.18), mean_holding=(400.0, 400.0)),
        admission=AdmissionControl(max_pending=8),
    ),
    WorkloadSpec(
        arrivals=DiurnalRate(base_rate=0.05, amplitude=0.6, period=5000.0)
    ),
    WorkloadSpec(
        arrivals=TraceDriven(arrivals=((0.0, 0), (1.5, 2), (1.5, 1)))
    ),
)


class TestValidation:
    def test_admission_rejects_closed_terminals(self):
        with pytest.raises(WorkloadError, match="closed terminals"):
            WorkloadSpec(
                arrivals=ClosedTerminals(),
                admission=AdmissionControl(max_pending=4),
            )

    def test_max_pending_must_be_positive_int(self):
        with pytest.raises(WorkloadError, match=">= 1"):
            AdmissionControl(max_pending=0)
        with pytest.raises(WorkloadError, match="int"):
            AdmissionControl(max_pending=2.5)
        with pytest.raises(WorkloadError, match="int"):
            AdmissionControl(max_pending=True)  # bools are not limits

    def test_poisson_rate_must_be_positive_and_finite(self):
        with pytest.raises(WorkloadError):
            PoissonOpen(rate=0.0)
        with pytest.raises(WorkloadError):
            PoissonOpen(rate=-1.0)
        with pytest.raises(WorkloadError):
            PoissonOpen(rate=math.inf)

    def test_mmpp_shape_checks(self):
        with pytest.raises(WorkloadError, match="2 phases"):
            MMPP(rates=(0.1,), mean_holding=(10.0,))
        with pytest.raises(WorkloadError, match="holding means"):
            MMPP(rates=(0.1, 0.2), mean_holding=(10.0,))
        with pytest.raises(WorkloadError, match=">= 0"):
            MMPP(rates=(-0.1, 0.2), mean_holding=(10.0, 10.0))
        with pytest.raises(WorkloadError, match="at least one"):
            MMPP(rates=(0.0, 0.0), mean_holding=(10.0, 10.0))
        with pytest.raises(WorkloadError, match="> 0"):
            MMPP(rates=(0.1, 0.2), mean_holding=(10.0, 0.0))
        with pytest.raises(WorkloadError, match="per_site"):
            MMPP(rates=(0.1, 0.2), mean_holding=(10.0, 10.0), per_site=False)

    def test_diurnal_shape_checks(self):
        with pytest.raises(WorkloadError, match="amplitude"):
            DiurnalRate(base_rate=0.1, amplitude=1.5, period=100.0)
        with pytest.raises(WorkloadError, match="period"):
            DiurnalRate(base_rate=0.1, amplitude=0.5, period=0.0)
        with pytest.raises(WorkloadError, match="base_rate"):
            DiurnalRate(base_rate=0.0, amplitude=0.5, period=100.0)

    def test_trace_shape_checks(self):
        with pytest.raises(WorkloadError, match=">= 1 arrival"):
            TraceDriven(arrivals=())
        with pytest.raises(WorkloadError, match="nondecreasing"):
            TraceDriven(arrivals=((5.0, 0), (1.0, 0)))
        with pytest.raises(WorkloadError, match="sites"):
            TraceDriven(arrivals=((0.0, -1),))

    def test_trace_validates_sites_against_config(self, tiny_config):
        spec = WorkloadSpec(arrivals=TraceDriven(arrivals=((0.0, 99),)))
        with pytest.raises(WorkloadError, match="99"):
            spec.validate_for(tiny_config)

    def test_open_specs_validate_against_paper_defaults(self):
        config = paper_defaults()
        for spec in OPEN_SPECS:
            spec.validate_for(config)


class TestNormalization:
    def test_none_stays_none(self):
        assert normalize_workload(None) is None

    def test_default_spec_normalizes_to_none(self):
        assert normalize_workload(WorkloadSpec()) is None
        assert WorkloadSpec().is_default()

    def test_open_specs_pass_through(self):
        for spec in OPEN_SPECS:
            assert normalize_workload(spec) is spec
            assert not spec.is_default()

    def test_non_spec_rejected(self):
        with pytest.raises(WorkloadError, match="WorkloadSpec"):
            normalize_workload(PoissonOpen(rate=0.1))

    def test_kind_reflects_arrivals(self):
        assert WorkloadSpec().kind == "closed"
        assert WorkloadSpec(arrivals=PoissonOpen(rate=0.1)).kind == "poisson"


class TestSerializationRoundTrip:
    def test_every_builtin_roundtrips(self):
        for spec in (WorkloadSpec(), *OPEN_SPECS):
            restored = workload_spec_from_dict(workload_spec_to_dict(spec))
            assert restored == spec, spec

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "workload.json"
        for spec in OPEN_SPECS:
            save_workload_spec(spec, path)
            assert load_workload_spec(path) == spec

    def test_custom_arrival_process_rejected(self):
        class Custom:
            kind = "custom"

        spec = WorkloadSpec.__new__(WorkloadSpec)
        object.__setattr__(spec, "arrivals", Custom())
        object.__setattr__(spec, "admission", None)
        with pytest.raises(ConfigError):
            workload_spec_to_dict(spec)

    def test_unknown_kind_rejected_on_read(self):
        payload = workload_spec_to_dict(OPEN_SPECS[0])
        payload["arrivals"]["kind"] = "martian"
        with pytest.raises(ConfigError):
            workload_spec_from_dict(payload)

    def test_missing_field_rejected_on_read(self):
        payload = workload_spec_to_dict(OPEN_SPECS[0])
        del payload["arrivals"]["rate"]
        with pytest.raises(ConfigError):
            workload_spec_from_dict(payload)


class TestCapacityEstimate:
    def test_paper_defaults_value(self):
        # cpu: 0.5*20*0.05 + 0.5*20*1.0 = 10.5; disk: 20*1/2 = 10.
        # CPU binds, so capacity = 1/10.5.
        assert estimate_site_capacity(paper_defaults()) == pytest.approx(
            1.0 / 10.5
        )

    def test_disk_bound_config_uses_disk_demand(self):
        config = paper_defaults()
        single_disk = dataclasses.replace(
            config, site=dataclasses.replace(config.site, num_disks=1)
        )
        # disk: 20*1/1 = 20 > cpu 10.5, so the disk binds.
        assert estimate_site_capacity(single_disk) == pytest.approx(1.0 / 20.0)
