"""The workload API redesign: ``repro.workloads`` is the one entry point.

Includes the AST pin required by the PR: no internal caller may use the
deprecated ``start_terminals()`` spelling — the only mention allowed in
``src/repro`` is the shim in ``model/terminals.py`` itself (the same
discipline ``tests/policies/test_select_api.py`` applies to
``select_site``).
"""

import ast
import pathlib
import warnings

import pytest

from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy

SRC_REPRO = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


class TestNoInternalLegacyCallers:
    """AST scan: the old entry point is dead inside ``src/repro``."""

    def test_no_start_terminals_calls_outside_shim(self):
        offenders = []
        for path in sorted(SRC_REPRO.rglob("*.py")):
            if path.name == "terminals.py" and path.parent.name == "model":
                continue  # the deprecation shim itself
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name == "start_terminals":
                    offenders.append(f"{path}:{node.lineno}")
        assert offenders == [], (
            "internal callers still use the deprecated start_terminals():\n"
            + "\n".join(offenders)
        )

    def test_no_start_terminals_imports_outside_shim(self):
        """Nothing inside src/repro even imports the legacy name."""
        offenders = []
        for path in sorted(SRC_REPRO.rglob("*.py")):
            if path.name == "terminals.py" and path.parent.name == "model":
                continue
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and any(
                    alias.name == "start_terminals" for alias in node.names
                ):
                    offenders.append(f"{path}:{node.lineno}")
        assert offenders == []


class TestDeprecatedShim:
    def test_start_terminals_warns_and_launches(self, tiny_config):
        from repro.model.terminals import start_terminals

        # A bare system whose workload was never started: strip the
        # already-launched terminal processes by building a fresh sim.
        system = DistributedDatabase(tiny_config, make_policy("LOCAL"), seed=5)
        with pytest.warns(DeprecationWarning, match="launch_closed_terminals"):
            start_terminals(system)

    def test_terminal_process_reexport_is_the_workloads_function(self):
        from repro.model import terminals
        from repro.workloads import closed

        assert terminals.terminal_process is closed.terminal_process

    def test_normal_construction_is_warning_free(self, tiny_config):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system = DistributedDatabase(
                tiny_config, make_policy("LOCAL"), seed=5
            )
            results = system.run(warmup=20.0, duration=100.0)
        assert results.completions > 0


class TestPublicSurface:
    def test_package_reexports_workload_api(self):
        import repro

        for name in (
            "WorkloadSpec",
            "WorkloadSummary",
            "WorkloadError",
            "AdmissionControl",
            "ArrivalProcess",
            "ClosedTerminals",
            "PoissonOpen",
            "MMPP",
            "DiurnalRate",
            "TraceDriven",
            "save_workload_spec",
            "load_workload_spec",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_workloads_package_exports_protocol_members(self):
        from repro import workloads

        for name in (
            "ArrivalProcess",
            "ArrivalSpec",
            "PhaseTrack",
            "WorkloadDriver",
            "next_thinned_gap",
            "normalize_workload",
            "start_workload",
            "estimate_site_capacity",
            "launch_closed_terminals",
            "terminal_process",
        ):
            assert hasattr(workloads, name), name

    def test_builtin_arrivals_satisfy_the_protocol(self):
        from repro.workloads import (
            ArrivalProcess,
            ClosedTerminals,
            DiurnalRate,
            MMPP,
            PoissonOpen,
            TraceDriven,
        )

        instances = (
            ClosedTerminals(),
            PoissonOpen(rate=0.1),
            MMPP(rates=(0.1, 0.2), mean_holding=(10.0, 10.0)),
            DiurnalRate(base_rate=0.1, amplitude=0.5, period=100.0),
            TraceDriven(arrivals=((0.0, 0),)),
        )
        for instance in instances:
            assert isinstance(instance, ArrivalProcess), instance
