#!/usr/bin/env python
"""Generate (or verify) the committed study specs under studies/.

Every built-in study of :mod:`repro.ablation.catalog` is committed as a
JSON :class:`~repro.ablation.spec.StudySpec` so that ``repro-experiments
study studies/<name>.json`` is reproducible from a checkout without
running any Python of ours first.  The catalog builders are the source
of truth; this tool keeps the files in sync.  Run from the repository
root::

    python tools/gen_studies.py            # (re)write studies/*.json
    python tools/gen_studies.py --check    # verify they are in sync (CI)

Exit codes: 0 = written / in sync, 1 = ``--check`` found drift (the
committed JSON no longer matches the catalog).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT_DIR = REPO_ROOT / "studies"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ablation.catalog import build_study, study_names  # noqa: E402
from repro.ablation.spec import study_spec_to_dict  # noqa: E402
from repro.experiments.runconfig import STANDARD  # noqa: E402


def render(name: str) -> str:
    """The canonical JSON text of one built-in study."""
    import json

    spec = build_study(name, STANDARD)
    return (
        json.dumps(study_spec_to_dict(spec), indent=2, sort_keys=True) + "\n"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify studies/*.json match the catalog instead of writing",
    )
    args = parser.parse_args(argv)

    OUTPUT_DIR.mkdir(exist_ok=True)
    stale = []
    for name in study_names():
        path = OUTPUT_DIR / f"{name}.json"
        text = render(name)
        if args.check:
            if not path.exists() or path.read_text(encoding="utf-8") != text:
                stale.append(path)
        else:
            path.write_text(text, encoding="utf-8")
            print(f"wrote {path.relative_to(REPO_ROOT)}")
    if stale:
        names = ", ".join(str(p.relative_to(REPO_ROOT)) for p in stale)
        print(
            f"stale study specs: {names}\n"
            "run `python tools/gen_studies.py` and commit the result",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print(f"studies/ in sync ({len(study_names())} specs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
