#!/usr/bin/env python
"""Regenerate the golden-trace corpus (tests/golden/).

The corpus digests are the standing license for simulation-kernel
refactors: ``tests/sim/test_golden_equivalence.py`` replays every case and
asserts byte-identity against the recordings.  A refactoring PR must
**never** regenerate them — if the suite fails, the refactor changed
behaviour and the refactor is what needs fixing.

Regeneration is only legitimate when a PR *intends* to change simulated
behaviour (a new model feature, a deliberate semantic fix).  To make that
an explicit, reviewable act, this tool refuses to run without::

    python tools/regen_golden.py --i-know-this-changes-behavior

which reruns the whole corpus on the current kernel and rewrites
``tests/golden/manifest.json`` plus the per-case results JSON files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the golden-trace corpus digests.",
    )
    parser.add_argument(
        "--i-know-this-changes-behavior",
        action="store_true",
        dest="acknowledged",
        help=(
            "Acknowledge that rewriting the recordings re-licenses every "
            "behavioural difference between the current kernel and the "
            "recorded one.  Required."
        ),
    )
    args = parser.parse_args(argv)

    if not args.acknowledged:
        parser.error(
            "refusing to regenerate the golden corpus.\n"
            "These recordings are the byte-equivalence license for kernel "
            "refactors; rewriting them silently would let a behaviour "
            "change masquerade as a refactor.  If this PR deliberately "
            "changes simulated behaviour, rerun with "
            "--i-know-this-changes-behavior and call the regeneration out "
            "in the PR description (see docs/performance.md)."
        )

    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT))

    from tests.golden import corpus

    manifest = corpus.build_manifest()
    corpus.MANIFEST_PATH.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {corpus.MANIFEST_PATH}")
    for case in corpus.CASES:
        print(f"  {case.name}: {manifest['cases'][case.name]['results_sha256'][:16]}…")
    print(f"  trace: {manifest['trace']['trace_sha256'][:16]}…")
    print(f"  jobs batch: {manifest['jobs']['results_sha256'][:16]}…")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
